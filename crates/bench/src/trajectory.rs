//! Machine-readable benchmark trajectory files (`BENCH_*.json`).
//!
//! The `gd-bench` binary serializes [`Measurement`]s into one JSON
//! document per artifact and commits the result at the repo root; each
//! regeneration is a new point on the performance trajectory. Times are
//! **integer nanoseconds** and speedups **integer milli-ratios** (5000 =
//! 5.00×) so the committed files diff cleanly — no float formatting
//! drift between toolchains.
//!
//! Schema (`"schema": "gd-bench/1"`):
//!
//! ```json
//! {
//!   "schema": "gd-bench/1",
//!   "artifact": "fig2",
//!   "stages": [
//!     {"name": "...", "median_ns": 0, "min_ns": 0, "max_ns": 0,
//!      "samples": 0, "iters": 0}
//!   ],
//!   "speedups": [
//!     {"name": "...", "baseline": "<stage>", "fast": "<stage>",
//!      "ratio_milli": 0, "min_milli": 0}
//!   ],
//!   "metrics": [
//!     {"name": "...", "value_milli": 0, "min_milli": 0}
//!   ]
//! }
//! ```
//!
//! `min_milli` is the committed floor for that speedup (omitted when a
//! pair is informational only); [`check`] enforces it on both the
//! committed document and, at half strength, on a fresh re-measurement,
//! so fast-path rot fails CI before it reaches the baseline.
//!
//! `metrics` (optional — absent in older documents) carries named
//! **deterministic** scalars in milli-units, e.g. a campaign's pruning
//! rate. Unlike stage medians they get no tolerance: [`check`] requires
//! a fresh re-measurement to reproduce each committed value exactly,
//! and enforces any `min_milli` floor on both documents.

use gd_campaign::json::Json;

use crate::timing::Measurement;

/// Current schema tag.
pub const SCHEMA: &str = "gd-bench/1";

/// A named speedup between two stages, with an optional committed floor
/// (milli-ratio) that [`check`] enforces.
#[derive(Debug, Clone, Copy)]
pub struct Speedup {
    /// Label for the pair.
    pub name: &'static str,
    /// Stage name of the slow reference.
    pub baseline: &'static str,
    /// Stage name of the fast path.
    pub fast: &'static str,
    /// Minimum acceptable ratio in milli-units, if gated.
    pub min_milli: Option<u64>,
}

/// A named deterministic scalar (milli-units) committed alongside the
/// timing stages, with an optional floor that [`check`] enforces.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// Label for the value.
    pub name: &'static str,
    /// The value in milli-units.
    pub value_milli: u64,
    /// Minimum acceptable value in milli-units, if gated.
    pub min_milli: Option<u64>,
}

/// `baseline / fast` as an integer milli-ratio (5000 = 5.00×).
pub fn ratio_milli(baseline_ns: u64, fast_ns: u64) -> u64 {
    let fast = fast_ns.max(1);
    (u128::from(baseline_ns) * 1000 / u128::from(fast)) as u64
}

fn stage_json(m: &Measurement) -> Json {
    Json::obj(vec![
        ("name", Json::Str(m.name.clone())),
        ("median_ns", Json::Int(m.median.as_nanos() as i128)),
        ("min_ns", Json::Int(m.min.as_nanos() as i128)),
        ("max_ns", Json::Int(m.max.as_nanos() as i128)),
        ("samples", Json::Int(m.samples as i128)),
        ("iters", Json::Int(i128::from(m.iters))),
    ])
}

/// Builds the document for one artifact from its measurements and
/// speedup pairs.
///
/// # Panics
///
/// Panics if a [`Speedup`] names a stage that is not in `stages` — a
/// bug in the benchmark definition, not in the data.
pub fn doc(artifact: &str, stages: &[Measurement], speedups: &[Speedup]) -> Json {
    doc_with_metrics(artifact, stages, speedups, &[])
}

/// Like [`doc`], with deterministic scalar metrics attached. An empty
/// `metrics` slice omits the array entirely, keeping older documents'
/// byte layout.
///
/// # Panics
///
/// Same panic condition as [`doc`].
pub fn doc_with_metrics(
    artifact: &str,
    stages: &[Measurement],
    speedups: &[Speedup],
    metrics: &[Metric],
) -> Json {
    let find = |name: &str| -> u64 {
        stages
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("speedup references unknown stage {name:?}"))
            .median
            .as_nanos() as u64
    };
    let speedups_json: Vec<Json> = speedups
        .iter()
        .map(|s| {
            let ratio = ratio_milli(find(s.baseline), find(s.fast));
            let mut fields = vec![
                ("name", Json::Str(s.name.to_string())),
                ("baseline", Json::Str(s.baseline.to_string())),
                ("fast", Json::Str(s.fast.to_string())),
                ("ratio_milli", Json::Int(i128::from(ratio))),
            ];
            if let Some(min) = s.min_milli {
                fields.push(("min_milli", Json::Int(i128::from(min))));
            }
            Json::obj(fields)
        })
        .collect();
    let mut fields = vec![
        ("schema", Json::Str(SCHEMA.to_string())),
        ("artifact", Json::Str(artifact.to_string())),
        ("stages", Json::Arr(stages.iter().map(stage_json).collect())),
        ("speedups", Json::Arr(speedups_json)),
    ];
    if !metrics.is_empty() {
        let metrics_json: Vec<Json> = metrics
            .iter()
            .map(|m| {
                let mut entry = vec![
                    ("name", Json::Str(m.name.to_string())),
                    ("value_milli", Json::Int(i128::from(m.value_milli))),
                ];
                if let Some(min) = m.min_milli {
                    entry.push(("min_milli", Json::Int(i128::from(min))));
                }
                Json::obj(entry)
            })
            .collect();
        fields.push(("metrics", Json::Arr(metrics_json)));
    }
    Json::obj(fields)
}

/// `(name, median_ns)` for every stage in a document, in order.
pub fn stage_medians(doc: &Json) -> Result<Vec<(String, u64)>, String> {
    let stages = doc
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"stages\" array".to_string())?;
    stages
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "stage without a \"name\"".to_string())?;
            let median = s
                .get("median_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stage {name:?} without \"median_ns\""))?;
            Ok((name.to_string(), median))
        })
        .collect()
}

/// `(name, ratio_milli, min_milli)` for every speedup entry, in order.
pub fn speedup_ratios(doc: &Json) -> Result<Vec<(String, u64, Option<u64>)>, String> {
    let speedups = doc
        .get("speedups")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing \"speedups\" array".to_string())?;
    speedups
        .iter()
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "speedup without a \"name\"".to_string())?;
            let ratio = s
                .get("ratio_milli")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("speedup {name:?} without \"ratio_milli\""))?;
            let min = s.get("min_milli").and_then(Json::as_u64);
            Ok((name.to_string(), ratio, min))
        })
        .collect()
}

/// `(name, value_milli, min_milli)` for every metric entry, in order.
/// Documents without a `metrics` array (older schema instances) yield
/// an empty list.
pub fn metric_values(doc: &Json) -> Result<Vec<(String, u64, Option<u64>)>, String> {
    let Some(metrics) = doc.get("metrics") else {
        return Ok(Vec::new());
    };
    let metrics = metrics.as_arr().ok_or_else(|| "\"metrics\" is not an array".to_string())?;
    metrics
        .iter()
        .map(|m| {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "metric without a \"name\"".to_string())?;
            let value = m
                .get("value_milli")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metric {name:?} without \"value_milli\""))?;
            let min = m.get("min_milli").and_then(Json::as_u64);
            Ok((name.to_string(), value, min))
        })
        .collect()
}

/// Compares a fresh re-measurement against the committed baseline.
///
/// Passing means: same schema and artifact, the same stage and speedup
/// names in the same order, every fresh stage median within
/// `tolerance_milli`/1000 × the committed median, every gated committed
/// speedup at or above its floor, and every gated fresh speedup at or
/// above **half** its floor (re-measurements on a loaded machine get
/// slack; the committed trajectory does not). Deterministic metrics get
/// no slack at all: a fresh value must equal the committed one, and
/// gated metrics must sit at or above their floor in both documents.
///
/// Returns human-readable report lines on success, or the list of
/// failures.
pub fn check(
    committed: &Json,
    fresh: &Json,
    tolerance_milli: u64,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();

    for (doc, which) in [(committed, "committed"), (fresh, "fresh")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => failures.push(format!("{which}: schema {other:?}, want {SCHEMA:?}")),
        }
    }
    let artifact = committed.get("artifact").and_then(Json::as_str);
    if artifact != fresh.get("artifact").and_then(Json::as_str) {
        failures.push("artifact mismatch between committed and fresh documents".to_string());
    }

    let base_stages = match stage_medians(committed) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("committed: {e}"));
            Vec::new()
        }
    };
    let fresh_stages = match stage_medians(fresh) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("fresh: {e}"));
            Vec::new()
        }
    };
    let names = |v: &[(String, u64)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    if !failures.is_empty() {
        return Err(failures);
    }
    if names(&base_stages) != names(&fresh_stages) {
        failures.push(format!(
            "stage set drifted: committed {:?}, fresh {:?}",
            names(&base_stages),
            names(&fresh_stages)
        ));
        return Err(failures);
    }

    for ((name, base_ns), (_, fresh_ns)) in base_stages.iter().zip(&fresh_stages) {
        let limit = u128::from(*base_ns) * u128::from(tolerance_milli) / 1000;
        if u128::from(*fresh_ns) > limit {
            failures.push(format!(
                "{name}: fresh median {fresh_ns} ns exceeds {base_ns} ns × {:.2} tolerance",
                tolerance_milli as f64 / 1000.0
            ));
        } else {
            report.push(format!(
                "{name}: fresh median {fresh_ns} ns vs committed {base_ns} ns (within tolerance)"
            ));
        }
    }

    let base_speedups = match speedup_ratios(committed) {
        Ok(s) => s,
        Err(e) => return Err(vec![format!("committed: {e}")]),
    };
    let fresh_speedups = match speedup_ratios(fresh) {
        Ok(s) => s,
        Err(e) => return Err(vec![format!("fresh: {e}")]),
    };
    let snames =
        |v: &[(String, u64, Option<u64>)]| v.iter().map(|(n, _, _)| n.clone()).collect::<Vec<_>>();
    if snames(&base_speedups) != snames(&fresh_speedups) {
        failures.push(format!(
            "speedup set drifted: committed {:?}, fresh {:?}",
            snames(&base_speedups),
            snames(&fresh_speedups)
        ));
        return Err(failures);
    }
    for ((name, base_ratio, min), (_, fresh_ratio, _)) in base_speedups.iter().zip(&fresh_speedups)
    {
        if let Some(min) = min {
            if base_ratio < min {
                failures.push(format!(
                    "{name}: committed speedup {base_ratio} milli below floor {min}"
                ));
            }
            if *fresh_ratio < min / 2 {
                failures.push(format!(
                    "{name}: fresh speedup {fresh_ratio} milli below half-floor {}",
                    min / 2
                ));
            }
        }
        report.push(format!(
            "{name}: speedup fresh {:.2}x vs committed {:.2}x",
            *fresh_ratio as f64 / 1000.0,
            *base_ratio as f64 / 1000.0
        ));
    }

    let base_metrics = match metric_values(committed) {
        Ok(m) => m,
        Err(e) => return Err(vec![format!("committed: {e}")]),
    };
    let fresh_metrics = match metric_values(fresh) {
        Ok(m) => m,
        Err(e) => return Err(vec![format!("fresh: {e}")]),
    };
    let mnames =
        |v: &[(String, u64, Option<u64>)]| v.iter().map(|(n, _, _)| n.clone()).collect::<Vec<_>>();
    if mnames(&base_metrics) != mnames(&fresh_metrics) {
        failures.push(format!(
            "metric set drifted: committed {:?}, fresh {:?}",
            mnames(&base_metrics),
            mnames(&fresh_metrics)
        ));
        return Err(failures);
    }
    for ((name, base_value, min), (_, fresh_value, _)) in base_metrics.iter().zip(&fresh_metrics) {
        if fresh_value != base_value {
            failures.push(format!(
                "{name}: fresh value {fresh_value} milli differs from committed {base_value} \
                 (deterministic metrics must reproduce exactly)"
            ));
            continue;
        }
        if let Some(min) = min {
            if base_value < min {
                failures
                    .push(format!("{name}: committed value {base_value} milli below floor {min}"));
                continue;
            }
        }
        report.push(format!("{name}: {base_value} milli (reproduced exactly)"));
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    fn m(name: &str, median_ns: u64) -> Measurement {
        Measurement {
            name: name.to_string(),
            median: Duration::from_nanos(median_ns),
            min: Duration::from_nanos(median_ns / 2),
            max: Duration::from_nanos(median_ns * 2),
            samples: 5,
            iters: 3,
        }
    }

    fn sample_doc(slow_ns: u64, fast_ns: u64) -> Json {
        doc(
            "fig2",
            &[m("sweep/interpreter", slow_ns), m("sweep/predecoded", fast_ns)],
            &[Speedup {
                name: "sweep",
                baseline: "sweep/interpreter",
                fast: "sweep/predecoded",
                min_milli: Some(5000),
            }],
        )
    }

    #[test]
    fn doc_round_trips_through_the_codec() {
        let d = sample_doc(10_000, 1_000);
        let text = d.to_string_pretty().unwrap();
        let parsed = gd_campaign::json::parse(&text).unwrap();
        assert_eq!(stage_medians(&parsed).unwrap()[0], ("sweep/interpreter".to_string(), 10_000));
        assert_eq!(speedup_ratios(&parsed).unwrap()[0], ("sweep".to_string(), 10_000, Some(5000)));
    }

    #[test]
    fn ratio_is_milli_units_and_division_safe() {
        assert_eq!(ratio_milli(10_000, 1_000), 10_000);
        assert_eq!(ratio_milli(3_000, 2_000), 1_500);
        assert_eq!(ratio_milli(5, 0), 5_000, "zero denominator clamps, not panics");
    }

    #[test]
    fn check_accepts_identical_documents() {
        let d = sample_doc(10_000, 1_000);
        let report = check(&d, &d, 2_000).unwrap();
        assert!(report.iter().any(|l| l.contains("within tolerance")));
    }

    #[test]
    fn check_rejects_median_regressions_beyond_tolerance() {
        let base = sample_doc(10_000, 1_000);
        let slow = sample_doc(10_000, 2_500); // fast stage regressed 2.5×
        let failures = check(&base, &slow, 2_000).unwrap_err();
        assert!(failures.iter().any(|l| l.contains("sweep/predecoded")), "{failures:?}");
    }

    #[test]
    fn check_rejects_a_baseline_below_its_floor() {
        let base = sample_doc(4_000, 1_000); // only 4× — floor is 5×
        let failures = check(&base, &base, 2_000).unwrap_err();
        assert!(failures.iter().any(|l| l.contains("below floor")), "{failures:?}");
    }

    #[test]
    fn check_rejects_stage_set_drift() {
        let base = sample_doc(10_000, 1_000);
        let other = doc("fig2", &[m("sweep/interpreter", 10_000)], &[]);
        assert!(check(&base, &other, 2_000).is_err());
    }

    fn metric_doc(value_milli: u64) -> Json {
        doc_with_metrics(
            "multifault",
            &[m("shard/order1", 10_000)],
            &[],
            &[Metric { name: "prune/rate", value_milli, min_milli: Some(1) }],
        )
    }

    #[test]
    fn metrics_round_trip_and_stay_optional() {
        let with = metric_doc(117);
        let text = with.to_string_pretty().unwrap();
        let parsed = gd_campaign::json::parse(&text).unwrap();
        assert_eq!(metric_values(&parsed).unwrap(), vec![("prune/rate".to_string(), 117, Some(1))]);
        // Older documents (no metrics array) parse to an empty list.
        let without = doc("fig2", &[m("sweep/interpreter", 10_000)], &[]);
        assert_eq!(metric_values(&without).unwrap(), Vec::new());
        assert!(without.get("metrics").is_none(), "empty metrics stay absent");
    }

    #[test]
    fn check_rejects_metric_drift_and_floor_violations() {
        let base = metric_doc(117);
        let report = check(&base, &base, 2_000).unwrap();
        assert!(report.iter().any(|l| l.contains("reproduced exactly")), "{report:?}");
        let drifted = metric_doc(118);
        let failures = check(&base, &drifted, 2_000).unwrap_err();
        assert!(failures.iter().any(|l| l.contains("differs from committed")), "{failures:?}");
        let floor = check(&metric_doc(0), &metric_doc(0), 2_000).unwrap_err();
        assert!(floor.iter().any(|l| l.contains("below floor")), "{floor:?}");
    }
}
