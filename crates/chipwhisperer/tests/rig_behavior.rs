//! Behavioral tests of the simulated rig: trigger-mode differences,
//! landscape consistency between scans, NVM persistence in campaigns, and
//! the §V headline shapes at reduced scale.

use gd_chipwhisperer::{
    full_grid, run_attack, scan_single, targets, AttackOutcome, AttackSpec, Device, FaultModel,
    GlitchParams, SuccessCheck, TriggerMode,
};

fn spec() -> AttackSpec {
    AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 800 }
}

#[test]
fn identical_attempts_are_bit_reproducible() {
    let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
    let model = FaultModel::default();
    for cycle in 0..8 {
        let params = GlitchParams::single(cycle, 12, -18);
        let a = run_attack(&dev, &model, params, 7, &spec(), None);
        let b = run_attack(&dev, &model, params, 7, &spec(), None);
        assert_eq!(a.outcome, b.outcome, "cycle {cycle}");
    }
}

#[test]
fn different_seeds_give_different_landscapes() {
    let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
    let a = FaultModel::default();
    let b = FaultModel { seed: 0x1234_5678, ..FaultModel::default() };
    let cells_a = scan_single(&dev, &a, 4..5, &spec(), None);
    let cells_b = scan_single(&dev, &b, 4..5, &spec(), None);
    // Same physics envelope, different chip: totals similar, outcomes not
    // identical.
    assert_ne!(
        cells_a[0].1.successes, cells_b[0].1.successes,
        "two chips should not produce identical per-cycle counts"
    );
}

#[test]
fn latest_vs_first_trigger_modes_differ_on_doubled_targets() {
    let src = targets::while_not_a_doubled();
    let dev = Device::from_asm(&src).unwrap();
    let model = FaultModel::default();
    // A long glitch re-armed on the latest trigger keeps firing after the
    // second trigger; a first-trigger burst does not reach loop 2 relative
    // cycles. Count faults delivered under each mode.
    let params = GlitchParams { ext_offset: 0, repeat: 8, width: 12, offset: -18 };
    let count_faults = |mode: TriggerMode| -> usize {
        let mut pipe = dev.boot();
        // Force an exit from loop 1 so the second trigger happens: patch
        // the guarded byte after boot.
        let mut faults = 0usize;
        let mut injector = model.injector_with_mode(params, 3, mode);
        for step in 0..2_000 {
            if step == 400 {
                let sp = pipe.emu.cpu.sp();
                pipe.emu.mem.write8(sp + 7, 1).unwrap();
            }
            let r = pipe.step_with(&mut |w| {
                let f = injector(w);
                faults += f.len();
                // Observe, but do not actually inject: keep the run clean.
                Vec::new()
            });
            match r {
                Ok(None) => {}
                _ => break,
            }
        }
        faults
    };
    let latest = count_faults(TriggerMode::Latest);
    let first = count_faults(TriggerMode::First);
    assert!(latest > first, "re-armed glitcher fires more: {latest} vs {first}");
    assert!(first > 0, "the initial burst still fires");
}

#[test]
fn nvm_threading_changes_delay_seeded_behavior() {
    // Two campaigns over the same params: one threading NVM (seed grows),
    // one always cold. With a seed-dependent target the outcomes diverge.
    // The bare asm targets ignore NVM, so just assert the state handling.
    let dev = Device::from_asm(targets::WHILE_A).unwrap();
    let model = FaultModel::default();
    let mut nvm = Vec::new();
    let a = run_attack(&dev, &model, GlitchParams::single(4, 12, -18), 1, &spec(), Some(&mut nvm));
    assert_eq!(nvm.len(), 0x1000, "nvm snapshot captured");
    let _ = a;
}

#[test]
fn grid_has_the_papers_size() {
    assert_eq!(full_grid().len(), 9801);
}

#[test]
fn headline_guard_ordering_holds_at_reduced_scale() {
    // while(!a) beats while(a) on the strongest-lobe slice (cheap version
    // of Table I's conclusion, kept in CI).
    let model = FaultModel::default();
    let mut rates = Vec::new();
    for src in [targets::WHILE_NOT_A, targets::WHILE_A] {
        let dev = Device::from_asm(src).unwrap();
        let mut successes = 0u32;
        let mut boot = 0u64;
        for cycle in 0..8u32 {
            for o in -30i8..=0 {
                boot += 1;
                let attempt = run_attack(
                    &dev,
                    &model,
                    GlitchParams::single(cycle, 12, o),
                    boot,
                    &spec(),
                    None,
                );
                if attempt.outcome == AttackOutcome::Success {
                    successes += 1;
                }
            }
        }
        rates.push(successes);
    }
    assert!(
        rates[0] > rates[1],
        "while(!a) ({}) more glitchable than while(a) ({})",
        rates[0],
        rates[1]
    );
}

#[test]
fn crashes_and_resets_occur_in_region() {
    // The violation region produces the full outcome taxonomy, not just
    // successes.
    let dev = Device::from_asm(targets::WHILE_NOT_A).unwrap();
    let model = FaultModel::default();
    let mut kinds = std::collections::BTreeSet::new();
    let mut boot = 0u64;
    for cycle in 0..8u32 {
        for (w, o) in [(12i8, -18i8), (13, -17), (11, -20), (-34, 22), (-33, 23), (-35, 21)] {
            boot += 1;
            let attempt =
                run_attack(&dev, &model, GlitchParams::single(cycle, w, o), boot, &spec(), None);
            kinds.insert(format!("{:?}", attempt.outcome));
        }
    }
    assert!(kinds.contains("Crash") || kinds.contains("Reset"), "{kinds:?}");
    assert!(kinds.contains("NoEffect"), "{kinds:?}");
}
