//! Regenerates Table II: multi-glitch (two identical back-to-back loops),
//! partial vs full success per cycle.

use gd_chipwhisperer::FaultModel;

fn main() {
    let model = FaultModel::default();
    let rows = gd_bench::glitch_tables::table2(&model);
    gd_bench::glitch_tables::print_table2(&rows);
}
