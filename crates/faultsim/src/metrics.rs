//! `gd_faultsim_*` metric families: enumeration, pruning, and outcome
//! counters labelled by fault model.

use std::sync::Arc;

use gd_glitch_emu::{Outcome, Tally};
use gd_obs::Counter;

use crate::model::Registry;

/// Per-model label set used by the order-2 executor (the pair space is
/// not one registry model).
pub const PAIRS_LABEL: &str = "pairs";

fn model_counter(name: &str, help: &str, model: &str) -> Arc<Counter> {
    gd_obs::counter(name, help, &[("model", model)])
}

/// Candidate faults enumerated (raw combinatorial space) for `model`.
pub fn candidates(model: &str) -> Arc<Counter> {
    model_counter(
        "gd_faultsim_candidates_total",
        "candidate faults enumerated before pruning, by fault model",
        model,
    )
}

/// Candidates pruned before simulation for `model`.
pub fn pruned(model: &str) -> Arc<Counter> {
    model_counter(
        "gd_faultsim_pruned_total",
        "candidate faults pruned by architectural-effect canonicalization, by fault model",
        model,
    )
}

/// Trials actually simulated for `model`.
pub fn simulated(model: &str) -> Arc<Counter> {
    model_counter(
        "gd_faultsim_simulated_total",
        "fault trials simulated (one canonical representative per class), by fault model",
        model,
    )
}

/// Weighted trial outcomes for `model` and `outcome`.
pub fn outcomes(model: &str, outcome: Outcome) -> Arc<Counter> {
    gd_obs::counter(
        "gd_faultsim_outcomes_total",
        "weighted fault-trial outcomes, by fault model and outcome class",
        &[("model", model), ("outcome", outcome.label())],
    )
}

/// Adds a weighted tally into the per-outcome counters of `model`.
pub fn record_tally(model: &str, tally: &Tally) {
    for o in Outcome::ALL {
        let n = tally.count(o);
        if n > 0 {
            outcomes(model, o).add(n);
        }
    }
}

/// Registers every `gd_faultsim_*` family at zero for the standard
/// registry (plus the order-2 pair space), so `/metrics` shows the
/// full inventory before any campaign runs.
pub fn register_metrics() {
    let registry = Registry::standard();
    for name in registry.names().into_iter().chain([PAIRS_LABEL]) {
        let _ = candidates(name);
        let _ = pruned(name);
        let _ = simulated(name);
        for o in Outcome::ALL {
            let _ = outcomes(name, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_every_family_at_zero() {
        register_metrics();
        let text = gd_obs::global().render_prometheus();
        for family in [
            "# TYPE gd_faultsim_candidates_total counter",
            "# TYPE gd_faultsim_pruned_total counter",
            "# TYPE gd_faultsim_simulated_total counter",
            "# TYPE gd_faultsim_outcomes_total counter",
        ] {
            assert!(text.contains(family), "missing {family:?}");
        }
        assert!(text.contains(r#"gd_faultsim_candidates_total{model="xor1.t"}"#));
        assert!(text.contains(r#"gd_faultsim_outcomes_total{model="pairs",outcome="Success"}"#));
    }
}
