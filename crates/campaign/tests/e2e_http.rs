//! End-to-end smoke test for the campaign service: boot the HTTP server
//! on an ephemeral port, submit the published Table I campaign, poll it
//! to completion, and require the text rendering fetched over HTTP to be
//! byte-identical to the committed `results/table1.txt`. A second test
//! exercises the bounded-queue 429 backpressure path.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use gd_campaign::http::request;
use gd_campaign::json::parse;
use gd_campaign::service::{Server, ServerConfig};
use gd_campaign::CampaignSpec;

fn golden(name: &str) -> String {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn submit(addr: &str, spec: &CampaignSpec) -> (u16, String) {
    let body = spec.to_json_text().expect("spec serializes");
    request(addr, "POST", "/campaigns", Some(&body)).expect("POST /campaigns")
}

/// Poll `GET /campaigns/{id}` until the job leaves the queue/run states.
fn await_done(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let (status, body) =
            request(addr, "GET", &format!("/campaigns/{id}"), None).expect("GET /campaigns/{id}");
        assert_eq!(status, 200, "status poll: {body}");
        let doc = parse(&body).expect("status is JSON");
        assert!(
            doc.get("elapsed_ms").and_then(|v| v.as_i64()).is_some(),
            "status always carries elapsed_ms: {body}"
        );
        match doc.get("state").and_then(|s| s.as_str()) {
            Some("done") => return,
            Some("failed") => panic!("campaign failed: {body}"),
            Some(_) => {}
            None => panic!("malformed status: {body}"),
        }
        assert!(Instant::now() < deadline, "campaign did not finish in time");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn table1_served_over_http_matches_the_committed_results() {
    // Release builds (the path scripts/ci.sh runs) submit the FULL
    // published Table I and require the served bytes to equal the
    // committed golden file. Debug builds make the same end-to-end
    // golden comparison on the full Figure 2 campaign instead — an
    // unoptimized Table I costs about a minute, Figure 2 about ten
    // seconds, and both exercise every layer (real shards over
    // `gd_exec`, merge, HTTP).
    let (spec, expected) = if cfg!(debug_assertions) {
        (CampaignSpec::fig2(), golden("fig2.txt"))
    } else {
        (CampaignSpec::table1(), golden("table1.txt"))
    };

    let server = Server::start(ServerConfig::default()).expect("server starts");
    let addr = server.addr().to_string();

    let (status, body) = submit(&addr, &spec);
    assert_eq!(status, 202, "submission accepted: {body}");
    let doc = parse(&body).expect("submission response is JSON");
    let id = doc.get("id").and_then(|v| v.as_u64()).expect("response carries an id");

    await_done(&addr, &id.to_string());

    let (status, text) =
        request(&addr, "GET", &format!("/campaigns/{id}/results?format=text"), None)
            .expect("GET results");
    assert_eq!(status, 200);
    assert_eq!(text, expected, "Table I over HTTP drifted from the expected rendering");

    // The JSON view of the same campaign parses and carries the identical text.
    let (status, body) = request(&addr, "GET", &format!("/campaigns/{id}/results"), None)
        .expect("GET results (JSON)");
    assert_eq!(status, 200);
    let result = gd_campaign::CampaignResult::from_json_text(&body).expect("result JSON parses");
    assert_eq!(result.text, expected);

    // The campaign above must have left its trail on /metrics: request
    // counters, the per-shard wall-time histogram, the engine's cache
    // counters (registered eagerly, zero without a store), and the
    // executor's chunk counters. scripts/ci.sh relies on this scrape as
    // its metrics-presence gate after the Table I run.
    // Run the static analyzer in-process first: its findings counters
    // land in the same global registry the server scrapes, so the lint
    // family must appear alongside the campaign's own.
    let mut hardened = gd_firmware::boot();
    glitch_resistor::harden(
        &mut hardened,
        &glitch_resistor::Config::new(glitch_resistor::Defenses::ALL),
    );
    let lint_report = gd_lint::LintReport::new(
        gd_lint::lint_module(&hardened),
        &gd_lint::Suppressions::default(),
    );
    assert!(!lint_report.deny(), "fully hardened boot firmware lints clean");
    lint_report.record_metrics();

    // Same story for the firmware ingester: register its families and
    // ingest the committed demo dump so the bin-format counters move.
    gd_ingest::register_metrics();
    let blob = std::fs::read(PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../testdata/ingest_demo.bin"
    )))
    .expect("committed demo blob");
    let ing =
        gd_ingest::ingest_bin(&blob, gd_ingest::testimg::DEMO_BASE).expect("demo blob ingests");

    // The CFG analyzer rides the same registry: recover the demo image,
    // record its per-image recovery counters, and run the GL03xx lints
    // so their verdict series move alongside the GL01xx/GL02xx ones.
    let wide = gd_emu::Config { wide: true, ..gd_emu::Config::default() };
    let g = gd_cfg::recover(&ing.image, wide);
    gd_cfg::metrics::record(&g, "e2e_demo");
    let sink = gd_cfg::lints::Sink {
        label: "the bad region".to_owned(),
        spans: vec![(gd_ingest::testimg::DEMO_BASE + 0x1a, gd_ingest::testimg::DEMO_BASE + 0x28)],
    };
    let guards = gd_cfg::lints::GuardChecks::pattern_rechecks(&g, &ing.image);
    let ctx = gd_cfg::lints::FaultCtx::new(&g, &ing.image, &sink, &guards);
    gd_lint::LintReport::new(gd_cfg::lints::lint_cfg(&ctx), &gd_lint::Suppressions::default())
        .record_metrics();

    let (status, metrics) = request(&addr, "GET", "/metrics", None).expect("GET /metrics");
    assert_eq!(status, 200);
    for family in [
        "# TYPE gd_lint_findings_total counter",
        "# TYPE gd_http_requests_total counter",
        "# TYPE gd_campaign_shard_ms histogram",
        "# TYPE gd_campaign_duration_ms histogram",
        "# TYPE gd_campaign_cache_hits_total counter",
        "# TYPE gd_campaign_cache_misses_total counter",
        "# TYPE gd_campaign_queue_depth gauge",
        "# TYPE gd_exec_chunks_executed_total counter",
        "# TYPE gd_exec_worker_busy_us_total counter",
        "# TYPE gd_chaos_injected_total counter",
        "# TYPE gd_campaign_shard_retries histogram",
        "# TYPE gd_campaign_shards_quarantined_total counter",
        "# TYPE gd_faultsim_candidates_total counter",
        "# TYPE gd_faultsim_pruned_total counter",
        "# TYPE gd_faultsim_simulated_total counter",
        "# TYPE gd_faultsim_outcomes_total counter",
        "# TYPE gd_ingest_images_total counter",
        "# TYPE gd_ingest_text_bytes_total counter",
        "# TYPE gd_ingest_extents_total counter",
        "# TYPE gd_ingest_pool_bytes_total counter",
        "# TYPE gd_cfg_blocks_total counter",
        "# TYPE gd_cfg_edges_total counter",
        "# TYPE gd_cfg_fixpoint_iterations_total counter",
        "# TYPE gd_cfg_unresolved_computed_total counter",
    ] {
        assert!(metrics.contains(family), "missing {family:?} in:\n{metrics}");
    }
    // The multifault inventory rides along with the engine's metrics:
    // every registry model (and the pair space) is pre-registered with
    // labelled series even before a multifault campaign runs.
    for series in [
        r#"gd_faultsim_candidates_total{model="xor1.t"}"#,
        r#"gd_faultsim_pruned_total{model="pairs"}"#,
        r#"gd_faultsim_outcomes_total{model="skip.t",outcome="Success"}"#,
    ] {
        assert!(metrics.contains(series), "missing {series:?} in:\n{metrics}");
    }
    // Both ingest label sets are pre-registered; the bin ingestion above
    // moved its image counter off zero.
    assert!(
        metrics.contains(r#"gd_ingest_images_total{format="bin"} 1"#),
        "the demo ingestion was counted:\n{metrics}"
    );
    assert!(
        metrics.contains(r#"gd_ingest_images_total{format="elf"} 0"#),
        "the elf label set is registered at zero:\n{metrics}"
    );
    assert!(
        metrics.contains(r#"gd_http_requests_total{route="/campaigns/{id}",status="200"}"#),
        "the polls above are counted under their route pattern:\n{metrics}"
    );
    let shard_count: u64 = metrics
        .lines()
        .find(|l| l.starts_with("gd_campaign_shard_ms_count"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("shard histogram has a count sample");
    assert!(shard_count >= 1, "the campaign's shards were observed:\n{metrics}");
    // One series per catalog lint, all zero on the fully hardened image.
    for spec in gd_lint::CATALOG.iter().filter(|s| s.id.starts_with("GL01")) {
        let series = format!("gd_lint_findings_total{{lint=\"{}\"}} 0", spec.id);
        assert!(metrics.contains(&series), "missing/nonzero {series:?} in:\n{metrics}");
    }
    // The CFG pass above counted the demo's recovered graph under its
    // own label and moved the GL0301 verdict series off zero (the demo
    // has exactly two glitch-reachable-sink findings — see
    // results/cfg_ingest.txt).
    assert!(
        metrics.contains(r#"gd_cfg_blocks_total{image="e2e_demo"} 8"#),
        "demo graph blocks counted:\n{metrics}"
    );
    assert!(
        metrics.contains(r#"gd_lint_findings_total{lint="GL0301"} 2"#),
        "GL0301 verdicts counted:\n{metrics}"
    );

    server.shutdown().expect("clean shutdown");
}

#[test]
fn a_full_queue_returns_429_backpressure() {
    // With a zero-length queue every submission is turned away with 429
    // before any work is admitted — the deterministic backpressure case.
    let server = Server::start(ServerConfig { queue_limit: 0, ..ServerConfig::default() })
        .expect("server starts");
    let addr = server.addr().to_string();

    let mut spec = CampaignSpec::table1();
    spec.shards = Some((0, 1));
    let (status, body) = submit(&addr, &spec);
    assert_eq!(status, 429, "zero-capacity queue rejects: {body}");
    let doc = parse(&body).expect("429 body is JSON");
    assert!(
        doc.get("error").and_then(|e| e.as_str()).unwrap_or("").contains("queue full"),
        "429 explains itself: {body}"
    );

    server.shutdown().expect("clean shutdown");
}
