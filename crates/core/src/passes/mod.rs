//! branches, integrity, delay, returns, enums passes.
pub mod branches;
pub mod delay;
pub mod enums;
pub mod integrity;
pub mod returns;
