//! Differential tests pinning the predecoded dispatch path to the live
//! interpreter: the micro-op table must agree with `Emu::decode` on every
//! one of the 65,536 first-halfword patterns, and snapshot/restore must
//! reproduce fresh-boot behavior exactly.

use gd_emu::{Config, Emu, Fault, Perms, PredecodedImage, RunOutcome, Slot, StopReason};
use gd_thumb::is_32bit_prefix;

const BASE: u32 = 0x0800_0000;
/// A benign second halfword: pairs with every 32-bit prefix the ARMv6-M
/// subset defines (BL needs hw2 top bits 11x1; 0xF800 gives a valid BL
/// with several prefixes and an undefined pattern with the rest — both
/// sides of the comparison see the same bytes either way).
const HW2: u16 = 0xF800;

fn emu_with(hw: u16, cfg: Config) -> Emu {
    let mut emu = Emu::with_config(cfg);
    emu.mem.map("flash", BASE, 0x10, Perms::RX).expect("fresh map");
    emu.mem.load(BASE, &hw.to_le_bytes()).expect("mapped");
    emu.mem.load(BASE + 2, &HW2.to_le_bytes()).expect("mapped");
    emu
}

/// Every halfword pattern: the table's slot must mirror what live decode
/// returns for the same bytes, under both configurations.
#[test]
fn predecode_matches_live_decode_for_all_halfwords() {
    for cfg in [
        Config { zero_is_invalid: false, ..Config::default() },
        Config { zero_is_invalid: true, ..Config::default() },
    ] {
        let mut emu = emu_with(0, cfg);
        for hw in 0..=u16::MAX {
            emu.mem.load(BASE, &hw.to_le_bytes()).expect("mapped");
            let mut bytes = hw.to_le_bytes().to_vec();
            bytes.extend_from_slice(&HW2.to_le_bytes());
            let image = PredecodedImage::from_bytes(BASE, &bytes, cfg);
            let live = emu.decode(BASE, hw);
            match image.slot(BASE).expect("covered") {
                Slot::Instr { instr, size } => {
                    assert_eq!(live, Ok((instr, size)), "hw={hw:#06x} cfg={cfg:?}");
                }
                Slot::Undefined { hw: shw, hw2 } => {
                    assert_eq!(
                        live,
                        Err(Fault::Undefined { addr: BASE, hw: shw, hw2 }),
                        "hw={hw:#06x} cfg={cfg:?}"
                    );
                }
                Slot::Incomplete { .. } | Slot::Live => {
                    panic!("hw={hw:#06x}: second halfword was available")
                }
            }
        }
    }
}

/// The same exhaustive sweep with the Thumb-2 wide subset enabled: the
/// table and live decode must agree on every first halfword under
/// `Config { wide: true }` too.
#[test]
fn predecode_matches_live_decode_for_all_halfwords_wide() {
    let cfg = Config { wide: true, ..Config::default() };
    let mut emu = emu_with(0, cfg);
    for hw in 0..=u16::MAX {
        emu.mem.load(BASE, &hw.to_le_bytes()).expect("mapped");
        let mut bytes = hw.to_le_bytes().to_vec();
        bytes.extend_from_slice(&HW2.to_le_bytes());
        let image = PredecodedImage::from_bytes(BASE, &bytes, cfg);
        let live = emu.decode(BASE, hw);
        match image.slot(BASE).expect("covered") {
            Slot::Instr { instr, size } => assert_eq!(live, Ok((instr, size)), "hw={hw:#06x}"),
            Slot::Undefined { hw: shw, hw2 } => {
                assert_eq!(live, Err(Fault::Undefined { addr: BASE, hw: shw, hw2 }), "hw={hw:#06x}")
            }
            Slot::Incomplete { .. } | Slot::Live => {
                panic!("hw={hw:#06x}: second halfword was available")
            }
        }
    }
}

/// One representative prefix per wide-encoding group, swept against every
/// possible second halfword: the predecode table and `Emu::decode` must
/// classify each pair identically under both configurations.
#[test]
fn predecode_matches_live_decode_for_all_second_halfwords() {
    // Groups: BL/B.W/BCond.W/BLX (0xF000, 0xF400), modified-immediate DP
    // (0xF04F, 0xF1B1), plain-binary MOVW/MOVT (0xF24A, 0xF2C2), wide
    // load/store (0xF8D3, 0xF8DF, 0xF8C2), and the all-undefined 0b11101
    // group (0xE800).
    const PREFIXES: [u16; 10] =
        [0xE800, 0xF000, 0xF04F, 0xF1B1, 0xF24A, 0xF2C2, 0xF400, 0xF8C2, 0xF8D3, 0xF8DF];
    for cfg in [Config::default(), Config { wide: true, ..Config::default() }] {
        let mut emu = emu_with(0, cfg);
        for hw1 in PREFIXES {
            assert!(is_32bit_prefix(hw1));
            emu.mem.load(BASE, &hw1.to_le_bytes()).expect("mapped");
            for hw2 in 0..=u16::MAX {
                emu.mem.load(BASE + 2, &hw2.to_le_bytes()).expect("mapped");
                let mut bytes = hw1.to_le_bytes().to_vec();
                bytes.extend_from_slice(&hw2.to_le_bytes());
                let image = PredecodedImage::from_bytes(BASE, &bytes, cfg);
                let live = emu.decode(BASE, hw1);
                match image.slot(BASE).expect("covered") {
                    Slot::Instr { instr, size } => assert_eq!(
                        live,
                        Ok((instr, size)),
                        "hw1={hw1:#06x} hw2={hw2:#06x} cfg={cfg:?}"
                    ),
                    Slot::Undefined { hw: shw, hw2: shw2 } => assert_eq!(
                        live,
                        Err(Fault::Undefined { addr: BASE, hw: shw, hw2: shw2 }),
                        "hw1={hw1:#06x} hw2={hw2:#06x} cfg={cfg:?}"
                    ),
                    Slot::Incomplete { .. } | Slot::Live => {
                        panic!("hw1={hw1:#06x} hw2={hw2:#06x}: second halfword was available")
                    }
                }
            }
        }
    }
}

/// A 32-bit prefix whose second halfword lies outside the image must
/// become `Slot::Incomplete` — not `Slot::Undefined` (the image cannot
/// know the full encoding) and not plain `Slot::Live` (which would
/// conflate "image ends mid-encoding" with "slot invalidated by a
/// perturbation"). Only a live fetch can tell "fetch fault at addr + 2"
/// from "undefined 32-bit pattern".
#[test]
fn prefix_at_image_edge_defers_to_live_decode() {
    for cfg in [Config::default(), Config { wide: true, ..Config::default() }] {
        for hw in 0..=u16::MAX {
            if !is_32bit_prefix(hw) {
                continue;
            }
            let image = PredecodedImage::from_bytes(BASE, &hw.to_le_bytes(), cfg);
            assert_eq!(image.slot(BASE), Some(Slot::Incomplete { hw }), "hw={hw:#06x}");
        }
    }
}

/// Image-end boundary, end to end: dispatching through a predecoded image
/// whose final halfword is a 32-bit prefix falls back to the live path
/// and raises a fetch fault at `addr + 2` when nothing is mapped there —
/// not an undefined-instruction fault.
#[test]
fn prefix_in_final_halfword_faults_at_next_fetch() {
    for cfg in [Config::default(), Config { wide: true, ..Config::default() }] {
        // Flash is exactly 4 bytes: `movs r0, #1` then a bare BL prefix.
        let code = [0x01, 0x20, 0x00, 0xF0];
        let mut emu = Emu::with_config(cfg);
        emu.mem.map("flash", BASE, 4, Perms::RX).expect("fresh map");
        emu.mem.load(BASE, &code).expect("fits");
        emu.set_pc(BASE);
        let image = PredecodedImage::from_bytes(BASE, &code, cfg);
        assert_eq!(image.slot(BASE + 2), Some(Slot::Incomplete { hw: 0xF000 }));
        match emu.run_predecoded(10, &image) {
            RunOutcome::Fault { fault: Fault::Mem(m), .. } => {
                assert_eq!(m.addr, BASE + 4, "cfg={cfg:?}");
            }
            other => panic!("expected fetch fault past the image end, got {other:?}"),
        }
    }
}

/// The fetch-fault case the decode rework split out: a prefix at the end
/// of mapped memory faults at `addr + 2` with a memory fault, not an
/// undefined-instruction fault.
#[test]
fn prefix_fetch_fault_is_distinct_from_undefined() {
    let mut emu = Emu::new();
    emu.mem.map("flash", BASE, 0x10, Perms::RX).expect("fresh map");
    let last = BASE + 0xE;
    emu.mem.load(last, &0xF000u16.to_le_bytes()).expect("mapped");
    match emu.decode(last, 0xF000) {
        Err(Fault::Mem(m)) => assert_eq!(m.addr, last + 2),
        other => panic!("expected fetch fault, got {other:?}"),
    }
    // The same prefix mid-image with an undefined second halfword is an
    // undefined-instruction fault carrying both halfwords.
    emu.mem.load(BASE, &[0x00, 0xF0, 0x00, 0x00]).expect("mapped");
    match emu.decode(BASE, 0xF000) {
        Err(Fault::Undefined { hw: 0xF000, hw2: Some(0), .. }) => {}
        other => panic!("expected undefined, got {other:?}"),
    }
}

/// run_predecoded over an unperturbed image behaves exactly like run.
#[test]
fn predecoded_run_matches_interpreter_run() {
    let src = "movs r0, #7\nadds r0, #35\nstr r0, [r1]\nldr r2, [r1]\nbkpt #9\n";
    let prog = gd_thumb::asm::assemble(src, BASE).expect("assembles");
    let boot = |cfg: Config| {
        let mut emu = Emu::with_config(cfg);
        emu.mem.map("flash", BASE, 0x100, Perms::RX).expect("fresh map");
        emu.mem.map("sram", 0x2000_0000, 0x100, Perms::RW).expect("fresh map");
        emu.mem.load(BASE, &prog.code).expect("fits");
        emu.set_pc(BASE);
        emu.cpu.set_reg(gd_thumb::Reg::R1, 0x2000_0010);
        emu
    };
    let cfg = Config::default();
    let mut live = boot(cfg);
    let live_out = live.run(100);
    let mut fast = boot(cfg);
    let image = PredecodedImage::from_region(fast.mem.region_at(BASE).expect("mapped"), cfg);
    let fast_out = fast.run_predecoded(100, &image);
    assert_eq!(live_out, fast_out);
    assert!(matches!(fast_out, RunOutcome::Stop { reason: StopReason::Bkpt(9), .. }));
    assert_eq!(live.cpu, fast.cpu);
    assert_eq!(live.steps(), fast.steps());
}

/// Snapshot → run (with stores) → restore reproduces the snapshot state,
/// and a store-free run skips the region copy without observable effect.
#[test]
fn snapshot_restore_round_trips() {
    let src = "movs r0, #1\nstr r0, [r1]\nbkpt #0\n";
    let prog = gd_thumb::asm::assemble(src, BASE).expect("assembles");
    let mut emu = Emu::new();
    emu.mem.map("flash", BASE, 0x100, Perms::RX).expect("fresh map");
    emu.mem.map("sram", 0x2000_0000, 0x100, Perms::RW).expect("fresh map");
    emu.mem.load(BASE, &prog.code).expect("fits");
    emu.set_pc(BASE);
    emu.cpu.set_reg(gd_thumb::Reg::R1, 0x2000_0020);

    let snap = emu.snapshot();
    let first = emu.run(100);
    assert_eq!(emu.mem.read32(0x2000_0020).expect("mapped"), 1);
    let dirty_epoch = emu.mem.write_epoch();
    assert!(dirty_epoch > 0, "the store advanced the write epoch");

    emu.restore(&snap);
    assert_eq!(emu.pc(), BASE);
    assert_eq!(emu.steps(), 0);
    assert_eq!(emu.mem.read32(0x2000_0020).expect("mapped"), 0, "store rolled back");
    let second = emu.run(100);
    assert_eq!(first, second, "replay from snapshot is bit-identical");

    // A restore with no intervening store is the epoch fast path.
    emu.restore(&snap);
    let epoch = emu.mem.write_epoch();
    emu.restore(&snap);
    assert_eq!(emu.mem.write_epoch(), epoch);
    assert_eq!(emu.run(100), first);
}

/// Loader writes are exempt from the write epoch: re-poking the same
/// address each trial (the sweep pattern) keeps the restore fast path.
#[test]
fn loader_writes_do_not_dirty_the_epoch() {
    let mut emu = Emu::new();
    emu.mem.map("flash", BASE, 0x100, Perms::RX).expect("fresh map");
    let before = emu.mem.write_epoch();
    emu.mem.load(BASE, &[0xAA, 0xBB]).expect("mapped");
    assert_eq!(emu.mem.write_epoch(), before);
}

/// The chunked loader writes across region boundaries exactly like the
/// old per-byte loop, and faults at the first unmapped byte.
#[test]
fn load_spans_regions_and_faults_on_gap() {
    let mut emu = Emu::new();
    emu.mem.map("lo", 0x1000, 4, Perms::RW).expect("fresh map");
    emu.mem.map("hi", 0x1004, 4, Perms::RW).expect("fresh map");
    emu.mem.load(0x1002, &[1, 2, 3, 4]).expect("spans the boundary");
    assert_eq!(emu.mem.peek(0x1002, 4).expect("mapped"), vec![1, 2, 3, 4]);
    let fault = emu.mem.load(0x1006, &[9, 9, 9]).expect_err("runs off the map");
    assert_eq!(fault.addr, 0x1008);
    assert_eq!(emu.mem.peek(0x1006, 2).expect("mapped"), vec![9, 9], "prefix written");
}
