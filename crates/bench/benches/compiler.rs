//! Benchmarks of the GlitchResistor compilation pipeline itself: parse,
//! harden (all defenses), and lower the boot firmware to machine code.

use core::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

/// Short, stable sampling so `cargo bench --workspace` stays in CI budget.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}
use glitch_resistor::{harden, Config, Defenses};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compiler/build_boot_module", |b| {
        b.iter(|| black_box(gd_firmware::boot()))
    });
    let module = gd_firmware::boot();
    c.bench_function("compiler/harden_all", |b| {
        b.iter(|| {
            let mut m = module.clone();
            black_box(harden(&mut m, &Config::new(Defenses::ALL)))
        })
    });
    let mut hardened = module.clone();
    harden(&mut hardened, &Config::new(Defenses::ALL));
    c.bench_function("compiler/lower_hardened_boot", |b| {
        b.iter(|| black_box(gd_backend::compile(&hardened, "main").unwrap()))
    });
    c.bench_function("compiler/verify_hardened_boot", |b| {
        b.iter(|| {
            gd_ir::verify_module(&hardened).unwrap();
            black_box(())
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_compile
}
criterion_main!(benches);
