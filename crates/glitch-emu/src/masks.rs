//! Enumeration of every k-bit mask over an n-bit word: the C(n, k)
//! combinations the paper sweeps when perturbing an instruction encoding.

/// Iterator over all n-bit values with exactly `k` bits set, in increasing
/// numeric order (Gosper's hack).
///
/// ```
/// use gd_glitch_emu::masks::ChooseBits;
/// let masks: Vec<u32> = ChooseBits::new(4, 2).collect();
/// assert_eq!(masks, vec![0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]);
/// ```
#[derive(Debug, Clone)]
pub struct ChooseBits {
    next: Option<u32>,
    limit: u32,
}

impl ChooseBits {
    /// All `n`-bit masks with exactly `k` set bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31` or `k > n`.
    pub fn new(n: u32, k: u32) -> ChooseBits {
        assert!(n <= 31, "mask width limited to 31 bits");
        assert!(k <= n, "cannot set {k} bits in an {n}-bit word");
        let limit = 1u32 << n;
        let first = if k == 0 { 0 } else { (1u32 << k) - 1 };
        ChooseBits { next: Some(first), limit }
    }

    /// The number of masks this iterator yields, C(n, k).
    pub fn count_exact(n: u32, k: u32) -> u64 {
        let mut result = 1u64;
        for i in 0..k.min(n - k) {
            result = result * u64::from(n - i) / (u64::from(i) + 1);
        }
        result
    }
}

impl Iterator for ChooseBits {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let current = self.next?;
        if current >= self.limit {
            self.next = None;
            return None;
        }
        self.next = if current == 0 {
            None
        } else {
            // Gosper's hack: next integer with the same popcount.
            let c = current & current.wrapping_neg();
            let r = current + c;
            Some((((r ^ current) >> 2) / c) | r)
        };
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bits_yields_only_zero() {
        assert_eq!(ChooseBits::new(16, 0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn all_bits_yields_only_full_mask() {
        assert_eq!(ChooseBits::new(16, 16).collect::<Vec<_>>(), vec![0xFFFF]);
    }

    #[test]
    fn counts_match_binomial() {
        for k in 0..=16 {
            let n = ChooseBits::new(16, k).count() as u64;
            assert_eq!(n, ChooseBits::count_exact(16, k), "C(16, {k})");
        }
    }

    #[test]
    fn whole_space_covered_once() {
        // Summing C(16, k) over all k enumerates every u16 exactly once.
        let mut seen = vec![false; 1 << 16];
        for k in 0..=16 {
            for mask in ChooseBits::new(16, k) {
                assert!(!seen[mask as usize], "mask {mask:#06x} yielded twice");
                seen[mask as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn masks_have_requested_popcount() {
        for k in [1, 5, 9] {
            for mask in ChooseBits::new(16, k) {
                assert_eq!(mask.count_ones(), k);
            }
        }
    }

    #[test]
    fn binomial_reference_values() {
        assert_eq!(ChooseBits::count_exact(16, 8), 12_870);
        assert_eq!(ChooseBits::count_exact(16, 1), 16);
        assert_eq!(ChooseBits::count_exact(16, 15), 16);
    }
}
