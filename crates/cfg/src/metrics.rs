//! `gd_cfg_*` metric families, labelled by image.

use crate::graph::Cfg;

/// Records the per-image recovery counters: blocks, edges, dataflow
/// fixpoint iterations, and computed branches left unresolved.
pub fn record(g: &Cfg, image_label: &str) {
    let edges: usize = g.succs.iter().map(Vec::len).sum();
    let series: [(&str, &str, u64); 4] = [
        ("gd_cfg_blocks_total", "Basic blocks recovered, by image", g.blocks.len() as u64),
        ("gd_cfg_edges_total", "CFG edges recovered, by image", edges as u64),
        (
            "gd_cfg_fixpoint_iterations_total",
            "Dataflow worklist iterations spent resolving computed branches, by image",
            g.fixpoint_iterations,
        ),
        (
            "gd_cfg_unresolved_computed_total",
            "Computed branches/calls left unresolved after recovery, by image",
            g.unresolved.len() as u64,
        ),
    ];
    for (name, help, n) in series {
        gd_obs::counter(name, help, &[("image", image_label)]).add(n);
    }
}
