//! Regenerates Table V: firmware size overhead (bytes) per defense.

fn main() {
    let rows = gd_bench::overhead::table5();
    gd_bench::overhead::print_table5(&rows);
}
