//! Predecoded micro-op tables: decode every halfword of an image once,
//! dispatch from the table forever after.
//!
//! Exhaustive glitch sweeps execute the same few dozen instructions
//! millions of times; re-running `decode16`/`decode32` on every step is
//! the dominant avoidable cost (the bottleneck ARMORY identifies for
//! exhaustive fault simulation). A [`PredecodedImage`] caches, per
//! halfword address, either the decoded instruction, the fact that the
//! pattern is undefined, or a marker that the slot must be decoded live.
//!
//! The table mirrors live decode-by-address exactly: each halfword
//! address gets an *independent* decode, because a glitched control flow
//! can land in the middle of what was laid out as a 32-bit instruction.
//! There is deliberately no notion of instruction boundaries.
//!
//! The fallback rule: dispatch from the table is only valid while memory
//! under the image is unchanged. Callers that perturb a halfword (the
//! sweep's target, a campaign's flip site) must [`PredecodedImage::invalidate`]
//! that address, which downgrades the affected slots to [`Slot::Live`] so
//! [`Emu::step_predecoded`](crate::Emu::step_predecoded) decodes them from
//! memory on every visit.

use gd_thumb::{decode16, decode32, is_32bit_prefix, DecodeError, Instr};

use crate::exec::Config;
use crate::mem::Region;

/// The predecode of one halfword address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The address decodes to `instr`, `size` bytes long (2 or 4).
    Instr {
        /// The decoded instruction.
        instr: Instr,
        /// Encoding size in bytes.
        size: u32,
    },
    /// The address holds an undefined pattern; `hw2` carries the second
    /// halfword for undefined 32-bit encodings.
    Undefined {
        /// First (or only) halfword.
        hw: u16,
        /// Second halfword for 32-bit patterns.
        hw2: Option<u16>,
    },
    /// Undecidable from the image alone — dispatch must decode live. Used
    /// for a 32-bit prefix in the image's final halfword (whether the
    /// second-halfword fetch faults depends on what is mapped after the
    /// image) and for slots invalidated by a perturbation.
    Live,
}

/// Classifies the halfword `hw` under `cfg`, given the following halfword
/// `hw2` when one exists in the image.
///
/// This is the single source of decode truth shared by
/// [`Emu::decode`](crate::Emu::decode) and [`PredecodedImage`]: both paths
/// call it, so the table cannot drift from the interpreter.
///
/// `hw2` is only consulted when `hw` is a 32-bit prefix; passing `None`
/// there yields [`Slot::Live`] (the image ends mid-encoding and only a
/// live fetch can tell a fetch fault from an undefined pattern — the two
/// cases [`Emu::decode`](crate::Emu::decode) keeps distinct).
pub fn classify(hw: u16, hw2: Option<u16>, cfg: Config) -> Slot {
    if hw == 0 && cfg.zero_is_invalid {
        return Slot::Undefined { hw, hw2: None };
    }
    if is_32bit_prefix(hw) {
        return match hw2 {
            None => Slot::Live,
            Some(h2) => match decode32(hw, h2) {
                Ok(instr) => Slot::Instr { instr, size: 4 },
                Err(_) => Slot::Undefined { hw, hw2: Some(h2) },
            },
        };
    }
    match decode16(hw) {
        Ok(instr) => Slot::Instr { instr, size: 2 },
        // decode16 reports non-prefix halfwords only as Undefined16; any
        // other variant here would be a decoder bug.
        Err(DecodeError::Undefined16(_)) => Slot::Undefined { hw, hw2: None },
        Err(e) => unreachable!("decode16({hw:#06x}) returned {e:?}"),
    }
}

/// A micro-op table covering one contiguous image: one [`Slot`] per
/// halfword address.
///
/// Built once per firmware/snippet, then shared by every trial of a sweep
/// (clone it per worker; it is plain data). Dispatch through
/// [`Emu::step_predecoded`](crate::Emu::step_predecoded) is only correct
/// while the emulator's memory under the image matches the bytes the
/// table was built from and the emulator runs the same [`Config`] —
/// perturbed addresses must be [`invalidate`](PredecodedImage::invalidate)d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredecodedImage {
    base: u32,
    cfg: Config,
    slots: Vec<Slot>,
}

impl PredecodedImage {
    /// Predecodes `bytes` as they would appear at `base` (2-aligned; bit 0
    /// is ignored). A trailing odd byte is not decodable and is dropped.
    pub fn from_bytes(base: u32, bytes: &[u8], cfg: Config) -> PredecodedImage {
        let n = bytes.len() / 2;
        let hw_at =
            |i: usize| (i < n).then(|| u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]));
        let slots = (0..n).map(|i| classify(hw_at(i).expect("i < n"), hw_at(i + 1), cfg)).collect();
        PredecodedImage { base: base & !1, cfg, slots }
    }

    /// Predecodes a mapped region's current contents.
    pub fn from_region(region: &Region, cfg: Config) -> PredecodedImage {
        PredecodedImage::from_bytes(region.base(), region.data(), cfg)
    }

    /// First address covered by the table.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The configuration the table was decoded under.
    pub fn cfg(&self) -> Config {
        self.cfg
    }

    /// Number of halfword slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot for `addr`, or `None` when `addr` is odd or outside the
    /// image (dispatch then falls back to the live path).
    #[inline]
    pub fn slot(&self, addr: u32) -> Option<Slot> {
        if addr & 1 != 0 || addr < self.base {
            return None;
        }
        self.slots.get(((addr - self.base) >> 1) as usize).copied()
    }

    /// Invalidates every slot whose decode depends on the halfword at
    /// `addr`: the slot at `addr` itself and the one at `addr - 2`, whose
    /// cached decode may have consumed `addr`'s halfword as the second
    /// half of a 32-bit encoding. Both become [`Slot::Live`].
    pub fn invalidate(&mut self, addr: u32) {
        let addr = addr & !1;
        for a in [addr.wrapping_sub(2), addr] {
            if a >= self.base {
                let i = ((a - self.base) >> 1) as usize;
                if let Some(slot) = self.slots.get_mut(i) {
                    *slot = Slot::Live;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_thumb::Reg;

    const CFG: Config = Config { zero_is_invalid: false };

    #[test]
    fn caches_both_encoding_sizes() {
        // movs r0, #1 ; bl <somewhere> (32-bit: 0xF000 0xF800)
        let bytes = [0x01, 0x20, 0x00, 0xF0, 0x00, 0xF8];
        let img = PredecodedImage::from_bytes(0x100, &bytes, CFG);
        assert_eq!(img.len(), 3);
        assert!(matches!(
            img.slot(0x100),
            Some(Slot::Instr { instr: Instr::MovImm { rd: Reg::R0, imm8: 1 }, size: 2 })
        ));
        assert!(matches!(img.slot(0x102), Some(Slot::Instr { size: 4, .. })));
        // The trailing halfword of the bl decodes independently too.
        assert!(img.slot(0x104).is_some());
        assert_eq!(img.slot(0x106), None);
        assert_eq!(img.slot(0x101), None, "odd addresses have no slot");
        assert_eq!(img.slot(0x0FE), None, "below base");
    }

    #[test]
    fn prefix_at_image_end_stays_live() {
        // A lone 32-bit prefix: the second halfword is out of the image.
        let bytes = 0xF000u16.to_le_bytes();
        let img = PredecodedImage::from_bytes(0, &bytes, CFG);
        assert_eq!(img.slot(0), Some(Slot::Live));
    }

    #[test]
    fn zero_halfword_honors_config() {
        let bytes = [0u8; 2];
        let img = PredecodedImage::from_bytes(0, &bytes, CFG);
        assert!(matches!(img.slot(0), Some(Slot::Instr { size: 2, .. })));
        let img = PredecodedImage::from_bytes(0, &bytes, Config { zero_is_invalid: true });
        assert_eq!(img.slot(0), Some(Slot::Undefined { hw: 0, hw2: None }));
    }

    #[test]
    fn invalidate_downgrades_dependent_slots() {
        let bytes = [0x01, 0x20, 0x02, 0x20, 0x03, 0x20];
        let mut img = PredecodedImage::from_bytes(0x100, &bytes, CFG);
        img.invalidate(0x102);
        assert_eq!(img.slot(0x100), Some(Slot::Live), "predecessor may embed the halfword");
        assert_eq!(img.slot(0x102), Some(Slot::Live));
        assert!(matches!(img.slot(0x104), Some(Slot::Instr { .. })), "successor unaffected");
    }

    #[test]
    fn invalidate_at_base_does_not_underflow() {
        let bytes = [0x01, 0x20];
        let mut img = PredecodedImage::from_bytes(0, &bytes, CFG);
        img.invalidate(0);
        assert_eq!(img.slot(0), Some(Slot::Live));
    }

    #[test]
    fn odd_trailing_byte_is_dropped() {
        let img = PredecodedImage::from_bytes(0, &[0x01, 0x20, 0xFF], CFG);
        assert_eq!(img.len(), 1);
    }
}
