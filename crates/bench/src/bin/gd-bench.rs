//! `gd-bench` — the committed benchmark trajectory.
//!
//! Measures the hot paths behind Figure 2 (the 2^16-mask perturbation
//! sweep), Table I (the glitch parameter scan), and the multifault
//! campaign (enumeration/pruning plus shard execution), on both the
//! interpreter path and the predecoded fast path, and serializes the
//! results to `BENCH_fig2.json` / `BENCH_table1.json` /
//! `BENCH_multifault.json` at the repo root
//! (see [`gd_bench::trajectory`] for the schema). Committing each
//! regeneration gives the repo a performance history next to its output
//! goldens.
//!
//! * `gd-bench` — re-measure and rewrite the files (a new trajectory
//!   point).
//! * `gd-bench --check` — re-measure and compare against the committed
//!   files without touching them: same stage set, fresh medians within
//!   `GD_BENCH_TOLERANCE` (default 3.0×) of the committed ones, gated
//!   speedups at their floors. `scripts/ci.sh` runs this with
//!   `GD_BENCH_SAMPLES=5` as the bench smoke.

use std::path::PathBuf;
use std::process::ExitCode;

use gd_bench::glitch_tables::{guard_spec, post_mortem_reg};
use gd_bench::timing::{fmt_duration, Harness, Measurement};
use gd_bench::trajectory::{self, Metric, Speedup};
use gd_campaign::json::Json;
use gd_chipwhisperer::{scan_cell, targets, Device, FaultModel};
use gd_emu::Config;
use gd_glitch_emu::masks::ChooseBits;
use gd_glitch_emu::{
    all_branch_cases, run_perturbed, sweep_k_serial, Direction, PerturbRunner, Tally,
};

/// Repo-root path of one trajectory file.
fn bench_path(artifact: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join(format!("BENCH_{artifact}.json"))
}

fn print_measurement(m: &Measurement) {
    println!(
        "{:<28} median {:>10}   [min {:>10}, max {:>10}]   ({} samples x {} iters)",
        m.name,
        fmt_duration(m.median),
        fmt_duration(m.min),
        fmt_duration(m.max),
        m.samples,
        m.iters,
    );
}

/// Figure 2 hot path: one perturbed trial of the first branch case, and
/// the exhaustive AND-panel sweep — all 14 cases × 2^16 masks —
/// interpreter vs predecoded.
///
/// Both sweep stages run serially so the ratio measures the fast path
/// itself (predecode + snapshot replay), not thread scaling; the
/// parallel `sweep_k` is pinned to the serial one by the differential
/// tests, so the per-trial win carries over.
fn bench_fig2(h: &Harness) -> Json {
    let cases = all_branch_cases();
    let cfg = Config::default();
    let direction = Direction::And;
    let one_case = &cases[0];
    let one_mask = direction.apply(one_case.target_halfword(), 0x0004);

    let mut stages = Vec::new();
    stages.push(h.measure("trial/interpreter", || run_perturbed(one_case, one_mask, cfg)));
    let mut runner = PerturbRunner::new(one_case, cfg);
    stages.push(h.measure("trial/predecoded", || runner.run(one_mask)));
    stages.push(h.measure("sweep/interpreter", || {
        let mut tally = Tally::default();
        for case in &cases {
            for k in 0..=16 {
                tally.merge(&sweep_k_serial(case, direction, k, cfg));
            }
        }
        tally
    }));
    stages.push(h.measure("sweep/predecoded", || {
        // The image builds are inside the closure: a real sweep pays one
        // per case, so the measured time amortizes them honestly.
        let mut tally = Tally::default();
        for case in &cases {
            let hw = case.target_halfword();
            let mut runner = PerturbRunner::with_image(case, cfg, case.predecode(cfg));
            for k in 0..=16 {
                for mask in ChooseBits::new(16, k) {
                    tally.record(runner.run(direction.apply(hw, mask as u16)));
                }
            }
        }
        tally
    }));
    for m in &stages {
        print_measurement(m);
    }
    trajectory::doc(
        "fig2",
        &stages,
        &[
            Speedup {
                name: "trial",
                baseline: "trial/interpreter",
                fast: "trial/predecoded",
                min_milli: None,
            },
            Speedup {
                name: "sweep",
                baseline: "sweep/interpreter",
                fast: "sweep/predecoded",
                min_milli: Some(5000),
            },
        ],
    )
}

/// Table I hot path: one full 99×99 scan cell of the first guard at
/// glitch cycle 0, with device predecoding off vs on. Each in-region
/// point boots a fresh device, so this also exercises the shared
/// per-device micro-op table and the cached SRAM power-on image.
fn bench_table1(h: &Harness) -> Json {
    let model = FaultModel::default();
    let (name, src) = targets::table1_guards()[0];
    let reg = post_mortem_reg(name);
    let spec = guard_spec();
    let mut dev_interp = Device::from_asm(src).expect("guard assembles");
    dev_interp.set_predecode_enabled(false);
    let dev_fast = Device::from_asm(src).expect("guard assembles");

    let stages = vec![
        h.measure("scan_cell/interpreter", || {
            scan_cell(&dev_interp, &model, 0, 0, 1, &spec, Some(reg))
        }),
        h.measure("scan_cell/predecoded", || {
            scan_cell(&dev_fast, &model, 0, 0, 1, &spec, Some(reg))
        }),
    ];
    for m in &stages {
        print_measurement(m);
    }
    trajectory::doc(
        "table1",
        &stages,
        &[Speedup {
            name: "scan_cell",
            baseline: "scan_cell/interpreter",
            fast: "scan_cell/predecoded",
            min_milli: None,
        }],
    )
}

/// Multifault hot path: the enumeration/pruning pass over every
/// registry model, one first-order shard (the single-bit transient
/// flips), and one second-order pair bucket — plus the campaign's
/// deterministic pruning rates as exact-match metrics, so the committed
/// trajectory also gates the redundancy analysis itself (rates must
/// reproduce bit-for-bit and stay above zero).
fn bench_multifault(h: &Harness) -> Json {
    let campaign = gd_faultsim::boot_campaign();
    let image = &campaign.image;
    let cfg = campaign.cfg;
    let stages = vec![
        h.measure("prune/enumerate", || {
            let sites = gd_faultsim::sites(image, cfg, &gd_faultsim::SCOPE_FUNCS);
            let slots = gd_faultsim::halfword_slots(image, &gd_faultsim::SCOPE_FUNCS);
            gd_faultsim::Registry::standard()
                .models()
                .iter()
                .enumerate()
                .map(|(i, m)| gd_faultsim::prune_model(i, m.as_ref(), &sites, slots, cfg).pruned())
                .sum::<u64>()
        }),
        h.measure("shard/order1_xor1t", || gd_faultsim::order1_shard(0)),
        h.measure("shard/order2_bucket", || gd_faultsim::order2_shard(0)),
    ];
    for m in &stages {
        print_measurement(m);
    }
    let mut order1 = gd_faultsim::MfStats::default();
    for model in 0..campaign.per_model.len() {
        order1.merge(&campaign.order1_stats(model));
    }
    let (_, bucket0) = gd_faultsim::order2_shard(0);
    trajectory::doc_with_metrics(
        "multifault",
        &stages,
        &[],
        &[
            Metric {
                name: "prune/order1_rate",
                value_milli: order1.pruned_ratio_milli(),
                min_milli: Some(1),
            },
            Metric {
                name: "prune/order2_bucket0_rate",
                value_milli: bucket0.pruned_ratio_milli(),
                min_milli: Some(1),
            },
        ],
    )
}

/// `GD_BENCH_TOLERANCE` (a float multiplier, default 3.0) in milli-units.
fn tolerance_milli() -> u64 {
    std::env::var("GD_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .map_or(3_000, |t| (t * 1000.0) as u64)
}

fn check_artifact(artifact: &str, fresh: &Json, tolerance: u64) -> bool {
    let path = bench_path(artifact);
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => match gd_campaign::json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("--check FAILED: {} does not parse: {e:?}", path.display());
                return false;
            }
        },
        Err(e) => {
            eprintln!("--check FAILED: cannot read {}: {e}", path.display());
            return false;
        }
    };
    match trajectory::check(&committed, fresh, tolerance) {
        Ok(report) => {
            for line in report {
                println!("--check {artifact}: {line}");
            }
            true
        }
        Err(failures) => {
            for line in failures {
                eprintln!("--check FAILED {artifact}: {line}");
            }
            false
        }
    }
}

fn write_artifact(artifact: &str, doc: &Json) -> bool {
    let path = bench_path(artifact);
    let text = match doc.to_string_pretty() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serializing {artifact}: {e:?}");
            return false;
        }
    };
    match std::fs::write(&path, text + "\n") {
        Ok(()) => {
            println!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("writing {}: {e}", path.display());
            false
        }
    }
}

fn main() -> ExitCode {
    let check_mode = std::env::args().skip(1).any(|a| a == "--check");
    let h = Harness::from_env();
    let docs = [
        ("fig2", bench_fig2(&h)),
        ("table1", bench_table1(&h)),
        ("multifault", bench_multifault(&h)),
    ];

    let mut ok = true;
    if check_mode {
        let tolerance = tolerance_milli();
        for (artifact, fresh) in &docs {
            ok &= check_artifact(artifact, fresh, tolerance);
        }
        if ok {
            println!("--check OK: benchmark trajectory holds");
        }
    } else {
        for (artifact, doc) in &docs {
            ok &= write_artifact(artifact, doc);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
