//! A tiny deterministic property-test harness: xorshift64* generation, a
//! fixed-count case loop, and a failing-input report.
//!
//! This replaces the workspace's former `proptest` dev-dependency so a
//! clean checkout builds and tests with **no network access**. It is
//! intentionally minimal — no shrinking, no persistence — but fully
//! deterministic: every case derives its RNG seed from the property's
//! base seed and the case index, so a reported failure reproduces
//! exactly, every run, on every machine.
//!
//! ```
//! gd_exec::check::cases(64, "addition commutes", |rng| {
//!     let (a, b) = (rng.u32(), rng.u32());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a), "a={a:#x} b={b:#x}");
//! });
//! ```
//!
//! Properties report their inputs in assertion messages (as above); the
//! harness adds the case index and seed on top, so the report names both
//! the concrete failing input and the recipe to regenerate it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default base seed shared by all properties. Override per property
/// with [`cases_seeded`].
pub const DEFAULT_SEED: u64 = 0x6117_c4ed_0000_d52a;

/// An xorshift64* generator — 64 bits of state, full 2⁶⁴−1 period,
/// passes the common statistical batteries; ample for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from `seed` (a zero seed is remapped — the
    /// xorshift state must be nonzero).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next raw 64-bit output.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        (self.u64() >> 48) as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    /// Uniform `i64`.
    pub fn i64(&mut self) -> i64 {
        self.u64() as i64
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform integer in `[lo, hi)`. Uses the high bits via widening
    /// multiply — unbiased enough for test generation.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((u128::from(self.u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Uniform `i8` in `[lo, hi]` (inclusive — matches the signed grid
    /// bounds the fault model uses).
    pub fn i8_in(&mut self, lo: i8, hi: i8) -> i8 {
        (i64::from(lo) + self.range(0, (i64::from(hi) - i64::from(lo) + 1) as u64) as i64) as i8
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.usize(0, options.len())]
    }

    /// A vector of `len in [min_len, max_len)` elements drawn by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.usize(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Derives the per-case seed from a base seed and the case index
/// (SplitMix64 finalizer — decorrelates consecutive indices).
fn case_seed(base: u64, case: u64) -> u64 {
    let mut z = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `property` for `count` cases with the default base seed,
/// panicking with a failing-input report on the first failure.
pub fn cases(count: u64, name: &str, property: impl FnMut(&mut Rng)) {
    cases_seeded(DEFAULT_SEED, count, name, property);
}

/// [`cases`] with an explicit base seed (use to pin a property to its
/// own generation stream).
///
/// # Panics
///
/// Re-raises the property's panic, after printing a report naming the
/// property, the failing case index, and its seed.
pub fn cases_seeded(base: u64, count: u64, name: &str, mut property: impl FnMut(&mut Rng)) {
    for case in 0..count {
        let seed = case_seed(base, case);
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            gd_obs::error!(
                "gd_exec::check",
                "property failed; rerun with gd_exec::check::Rng::new(seed) to reproduce",
                property = name,
                case = format_args!("{case}/{count}"),
                seed = format_args!("{seed:#018x}"),
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn distinct_cases_get_distinct_seeds() {
        let seeds: Vec<u64> = (0..1000).map(|i| case_seed(DEFAULT_SEED, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn range_respects_bounds_and_hits_extremes() {
        let mut rng = Rng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range(10, 14);
            assert!((10..14).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi, "uniform draw covers the extremes");
    }

    #[test]
    fn i8_in_covers_full_signed_span() {
        let mut rng = Rng::new(11);
        for _ in 0..10_000 {
            let v = rng.i8_in(-49, 49);
            assert!((-49..=49).contains(&v));
        }
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            cases(100, "always fails on case 3", |rng| {
                let _ = rng.u64();
                // Fail deterministically on a late case to prove the loop ran.
                if rng.0 % 7 == 0 {
                    panic!("synthetic failure");
                }
            })
        }));
        // With 100 cases and a 1/7 predicate the failure fires with
        // overwhelming probability; the payload must survive unchanged.
        let payload = result.expect_err("a case must fail");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "synthetic failure");
    }

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = Rng::new(13);
        for _ in 0..500 {
            let v = rng.vec(2, 256, |r| r.u8());
            assert!((2..256).contains(&v.len()));
        }
    }
}
