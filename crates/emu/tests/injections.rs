//! Fetch-stage fault injection: `Emu::inject` must corrupt, skip, or
//! bus-fault exactly the fetches it is armed for — without touching
//! memory — and the predecoded dispatch path must agree with the live
//! interpreter once the injected sites are range-invalidated.

use gd_emu::{
    Emu, InjectKind, Injection, LoadOverride, Perms, Persistence, PredecodedImage, RunOutcome,
    StepOutcome, StopReason,
};
use gd_thumb::Reg;

const BASE: u32 = 0x0800_0000;
const SRAM: u32 = 0x2000_0000;

fn boot(src: &str) -> Emu {
    let prog = gd_thumb::asm::assemble(src, BASE).expect("assembles");
    let mut emu = Emu::new();
    emu.mem.map("flash", BASE, 0x100, Perms::RX).expect("fresh map");
    emu.mem.map("sram", SRAM, 0x100, Perms::RW).expect("fresh map");
    emu.mem.load(BASE, &prog.code).expect("fits");
    emu.set_pc(BASE);
    emu
}

fn stops_with(out: RunOutcome, imm: u8) {
    assert!(
        matches!(out, RunOutcome::Stop { reason: StopReason::Bkpt(i), .. } if i == imm),
        "expected bkpt #{imm}, got {out:?}"
    );
}

/// A transient corrupt substitutes the fetched halfword once and leaves
/// the bytes in memory untouched.
#[test]
fn transient_corrupt_changes_one_fetch_not_memory() {
    let mut emu = boot("movs r0, #1\nbkpt #0\n");
    // movs r0, #5 instead of movs r0, #1.
    emu.inject(Injection::new(BASE, InjectKind::Corrupt { hw: 0x2005 }, Persistence::Transient));
    stops_with(emu.run(10), 0);
    assert_eq!(emu.cpu.reg(Reg::R0), 5);
    assert_eq!(emu.mem.peek(BASE, 2).expect("mapped"), 0x2001u16.to_le_bytes());
    assert!(!emu.injections()[0].is_armed(), "transient injections disarm after firing");
}

/// Transient fires on exactly one loop iteration; permanent on all.
#[test]
fn persistence_controls_refiring_in_a_loop() {
    let src = "movs r2, #0\nmovs r0, #0\nloop:\nadds r2, #1\nadds r0, #1\ncmp r0, #3\nbne loop\nbkpt #0\n";
    let site = BASE + 4; // adds r2, #1
    for (persistence, expected_r2) in
        [(Persistence::Transient, 2u32), (Persistence::Permanent, 0u32)]
    {
        let mut emu = boot(src);
        emu.inject(Injection::new(site, InjectKind::Skip, persistence));
        stops_with(emu.run(100), 0);
        assert_eq!(emu.cpu.reg(Reg::R0), 3);
        assert_eq!(emu.cpu.reg(Reg::R2), expected_r2, "{persistence:?}");
    }
}

/// Skipping a 32-bit encoding advances the PC by 4 and executes nothing:
/// the call never happens, LR stays clear, and fall-through continues.
#[test]
fn skip_steps_over_a_wide_instruction() {
    let mut emu = boot("bl sub\nbkpt #1\nsub:\nbkpt #2\n");
    emu.inject(Injection::new(BASE, InjectKind::Skip, Persistence::Transient));
    let steps_before = emu.steps();
    match emu.step() {
        Ok(StepOutcome::Step(s)) => {
            assert_eq!(s.size, 4, "skip spans the whole 32-bit encoding");
            assert_eq!(s.next_pc, BASE + 4);
        }
        other => panic!("expected a skipped step, got {other:?}"),
    }
    assert_eq!(emu.steps(), steps_before + 1, "the skip consumed one step");
    stops_with(emu.run(10), 1);
    assert_eq!(emu.cpu.reg(Reg::LR), 0, "the skipped bl never linked");
}

/// A load-bus injection corrupts the load of its own fetch only; armed on
/// an instruction that performs no load, the override must not leak into
/// a later load.
#[test]
fn load_bus_override_is_synchronized_to_its_fetch() {
    let src = "ldr r0, [r1]\nldr r2, [r1]\nbkpt #0\n";
    let mut emu = boot(src);
    emu.mem.load(SRAM, &0x10u32.to_le_bytes()).expect("mapped");
    emu.cpu.set_reg(Reg::R1, SRAM);
    emu.inject(Injection::new(
        BASE,
        InjectKind::LoadBus(LoadOverride::Or(0x0F)),
        Persistence::Transient,
    ));
    stops_with(emu.run(10), 0);
    assert_eq!(emu.cpu.reg(Reg::R0), 0x1F, "first load corrupted");
    assert_eq!(emu.cpu.reg(Reg::R2), 0x10, "second load clean");

    // No-load site: the override is dropped, not deferred.
    let mut emu = boot("movs r0, #1\nldr r2, [r1]\nbkpt #0\n");
    emu.mem.load(SRAM, &0x10u32.to_le_bytes()).expect("mapped");
    emu.cpu.set_reg(Reg::R1, SRAM);
    emu.inject(Injection::new(
        BASE,
        InjectKind::LoadBus(LoadOverride::Or(0x0F)),
        Persistence::Transient,
    ));
    stops_with(emu.run(10), 0);
    assert_eq!(emu.cpu.reg(Reg::R0), 1);
    assert_eq!(emu.cpu.reg(Reg::R2), 0x10, "override did not leak to the next load");
}

/// Restoring a snapshot taken before arming drops the trial's injections
/// — the multi-fault trial loop relies on restore-as-reset.
#[test]
fn restore_resets_injections_to_the_snapshot() {
    let mut emu = boot("movs r0, #1\nbkpt #0\n");
    let snap = emu.snapshot();
    emu.inject(Injection::new(BASE, InjectKind::Corrupt { hw: 0x2005 }, Persistence::Transient));
    stops_with(emu.run(10), 0);
    assert_eq!(emu.cpu.reg(Reg::R0), 5);
    emu.restore(&snap);
    assert!(emu.injections().is_empty(), "restore clears trial injections");
    stops_with(emu.run(10), 0);
    assert_eq!(emu.cpu.reg(Reg::R0), 1);
}

/// The satellite regression: two faults straddling a wide instruction.
/// Predecoded dispatch must match the live interpreter once both sites
/// are invalidated via the range API — and demonstrably diverges when
/// the stale cached micro-op is left in place.
#[test]
fn straddling_faults_need_range_invalidation_on_the_predecoded_path() {
    let src = "movs r0, #1\nbl sub\nbkpt #7\nsub:\nbkpt #9\n";
    // Faults in both halves of the bl at [BASE+2, BASE+6): the prefix
    // becomes movs r0, #5 (16-bit, so the suffix is then fetched as its
    // own instruction) and the suffix becomes movs r1, #6.
    let arm = |emu: &mut Emu| {
        emu.inject(Injection::new(
            BASE + 2,
            InjectKind::Corrupt { hw: 0x2005 },
            Persistence::Transient,
        ));
        emu.inject(Injection::new(
            BASE + 4,
            InjectKind::Corrupt { hw: 0x2106 },
            Persistence::Transient,
        ));
    };

    let mut live = boot(src);
    arm(&mut live);
    let live_out = live.run(20);
    stops_with(live_out, 7);
    assert_eq!((live.cpu.reg(Reg::R0), live.cpu.reg(Reg::R1)), (5, 6));

    let cfg = live.cfg;
    let mut fast = boot(src);
    let pristine = PredecodedImage::from_region(fast.mem.region_at(BASE).expect("mapped"), cfg);

    // Stale table: the cached bl micro-op dispatches and the injections
    // never apply — the run takes the call instead.
    let mut image = pristine.clone();
    arm(&mut fast);
    let stale_out = fast.run_predecoded(20, &image);
    stops_with(stale_out, 9);

    // Range-invalidated table: both injected sites (and the prefix
    // predecessor) fall back to the live path; behavior matches exactly.
    let mut fast = boot(src);
    arm(&mut fast);
    image.invalidate_range(BASE + 2, 4);
    let fast_out = fast.run_predecoded(20, &image);
    assert_eq!(fast_out, live_out);
    assert_eq!(fast.cpu, live.cpu);
    assert_eq!(fast.steps(), live.steps());

    // Healing from the pristine table restores cached dispatch.
    image.heal_range(&pristine, BASE + 2, 4);
    assert_eq!(image, pristine);
}
