//! The §V attack targets: the paper's three loop guards, assembled exactly
//! as Table I shows them (same instructions, same 8-cycle iteration), plus
//! the back-to-back variants used by the multi- and long-glitch
//! experiments.
//!
//! Conventions shared with the scan drivers:
//!
//! - a store to the GPIO output register (`0x4800_0014`) raises the
//!   trigger, "exactly 1 clock cycle before the targeted instruction";
//! - escaping a loop reaches `bkpt #1` — the success marker;
//! - the guarded variable is a `volatile` stack slot, exactly as in the
//!   paper (`while` loops over `volatile` variables).

/// `while (!a)` with `a = 0` — the paper's most glitchable guard.
///
/// Loop body (Table Ia): `mov r3, sp; adds r3, #7; ldrb r3, [r3]; cmp r3,
/// #0; beq loop` — 8 cycles per iteration with a 3-cycle taken branch.
pub const WHILE_NOT_A: &str = "
    sub sp, #8
    movs r0, #0
    mov r1, sp
    strb r0, [r1, #7]       ; a = 0 at [sp+7]
    ldr r0, =0x48000014
    movs r1, #1
    str r1, [r0]            ; trigger
loop:
    mov r3, sp
    adds r3, #7
    ldrb r3, [r3]
    cmp r3, #0
    beq loop                ; while (!a)
    bkpt #1                 ; escaped: success
    .pool
";

/// `while (a)` with `a = 1` (Table Ib).
pub const WHILE_A: &str = "
    sub sp, #8
    movs r0, #1
    mov r1, sp
    strb r0, [r1, #7]       ; a = 1 at [sp+7]
    ldr r0, =0x48000014
    movs r1, #1
    str r1, [r0]            ; trigger
loop:
    mov r3, sp
    adds r3, #7
    ldrb r3, [r3]
    cmp r3, #0
    bne loop                ; while (a)
    bkpt #1
    .pool
";

/// `while (a != 0xD3B9AEC6)` with `a = 0xE7D25763` (Table Ic): a wide
/// Hamming-distance comparison.
pub const WHILE_A_NE_CONST: &str = "
    sub sp, #24
    ldr r0, =0xE7D25763
    str r0, [sp, #16]       ; a at [sp+16]
    ldr r0, =0x48000014
    movs r1, #1
    str r1, [r0]            ; trigger
loop:
    ldr r2, [sp, #16]
    ldr r3, =0xD3B9AEC6
    cmp r2, r3
    bne loop                ; while (a != 0xD3B9AEC6)
    bkpt #1
    .pool
";

/// Builds the two-subsequent-loops variant of a guard for the multi- and
/// long-glitch experiments (§V-C/§V-D): trigger, loop, re-trigger, loop,
/// success marker.
fn doubled(init: &str, guard: &str) -> String {
    format!(
        "
    {init}
    ldr r6, =0x48000014
    movs r7, #1
    str r7, [r6]            ; trigger 1
loop1:
{guard1}
    str r7, [r6]            ; trigger 2
loop2:
{guard2}
    bkpt #1
    .pool
",
        init = init,
        guard1 = guard.replace("{L}", "loop1"),
        guard2 = guard.replace("{L}", "loop2"),
    )
}

/// Double-loop `while (!a)`.
pub fn while_not_a_doubled() -> String {
    doubled(
        "sub sp, #8\n    movs r0, #0\n    mov r1, sp\n    strb r0, [r1, #7]",
        "    mov r3, sp\n    adds r3, #7\n    ldrb r3, [r3]\n    cmp r3, #0\n    beq {L}",
    )
}

/// Double-loop `while (a)`.
pub fn while_a_doubled() -> String {
    doubled(
        "sub sp, #8\n    movs r0, #1\n    mov r1, sp\n    strb r0, [r1, #7]",
        "    mov r3, sp\n    adds r3, #7\n    ldrb r3, [r3]\n    cmp r3, #0\n    bne {L}",
    )
}

/// Double-loop `while (a != 0xD3B9AEC6)`.
pub fn while_a_ne_const_doubled() -> String {
    doubled(
        "sub sp, #24\n    ldr r0, =0xE7D25763\n    str r0, [sp, #16]",
        "    ldr r2, [sp, #16]\n    ldr r3, =0xD3B9AEC6\n    cmp r2, r3\n    bne {L}",
    )
}

/// The three guards of Table I, with names.
pub fn table1_guards() -> Vec<(&'static str, &'static str)> {
    vec![
        ("while(!a)", WHILE_NOT_A),
        ("while(a)", WHILE_A),
        ("while(a!=0xD3B9AEC6)", WHILE_A_NE_CONST),
    ]
}

#[cfg(test)]
mod tests {
    use crate::device::Device;
    use gd_pipeline::RunEnd;

    #[test]
    fn all_targets_assemble_and_spin() {
        for (name, src) in super::table1_guards() {
            let dev = Device::from_asm(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut pipe = dev.boot();
            let end = pipe.run(500);
            assert!(matches!(end, RunEnd::CycleLimit), "{name} must loop forever");
            assert!(pipe.trigger_cycle().is_some(), "{name} raises the trigger");
        }
    }

    #[test]
    fn loop_iterations_take_eight_cycles() {
        let dev = Device::from_asm(super::WHILE_NOT_A).unwrap();
        let mut pipe = dev.boot();
        pipe.run(10_000);
        let trigger = pipe.trigger_cycle().unwrap();
        let spinning = 10_000 - trigger;
        // mov(1) + adds(1) + ldrb(2) + cmp(1) + beq taken(3) = 8.
        assert!(
            spinning % 8 <= 7 && (10_000 - trigger) / 8 > 1000,
            "≈8-cycle iterations after the trigger"
        );
    }

    #[test]
    fn doubled_targets_raise_two_triggers_when_first_loop_broken() {
        let src = super::while_not_a_doubled();
        let dev = Device::from_asm(&src).unwrap();
        let mut pipe = dev.boot();
        pipe.run(500);
        assert_eq!(pipe.trigger_cycles().len(), 1, "stuck in loop 1");
        // Manually break loop 1: write a = 1 behind the firmware's back.
        let sp = pipe.emu.cpu.sp();
        pipe.emu.mem.write8(sp + 7, 1).unwrap();
        pipe.run(1_000);
        assert_eq!(pipe.trigger_cycles().len(), 2, "second trigger raised");
    }
}
