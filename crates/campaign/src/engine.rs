//! The campaign engine: shards a spec, fans the shards out over
//! [`gd_exec`], merges the results in plan order, and — when given a
//! store directory — persists completed shards as resumable checkpoints
//! and finished campaigns in a content-addressed cache.
//!
//! Store layout (all files are integrity-sealed JSON, see below):
//!
//! ```text
//! <store>/cache/<cache-key>.json          completed campaigns
//! <store>/runs/<checkpoint-key>/shard-<index>.json
//! ```
//!
//! The cache key covers everything that determines output bytes (spec,
//! firmware image bytes, fault-model constants, seed, shard range); the
//! checkpoint key additionally strips the shard range, so a partial
//! campaign's shards seed the full campaign and a killed engine resumes
//! where it stopped. Thread count is part of neither: output is
//! bit-identical at any worker count.
//!
//! ## Self-healing
//!
//! The engine assumes its environment misbehaves (it is, after all, the
//! infrastructure of a fault-injection paper) and recovers in layers:
//!
//! * **Per-shard quarantine** — a panicking shard attempt is caught, not
//!   propagated; the shard retries with exponential backoff up to a
//!   budget, after which the campaign fails with a typed
//!   [`CampaignError::ShardFailed`] naming the shard, attempt count, and
//!   cause. Other shards keep running either way.
//! * **Fan-out resubmission** — a panic below the quarantine (in the
//!   executor's own workers) aborts a whole [`gd_exec::par_map`] pass;
//!   completed shards are kept and the missing ones are resubmitted,
//!   giving up only after repeated passes make *no* progress
//!   ([`CampaignError::FanoutFailed`]).
//! * **Integrity seal** — every store file carries a SHA-256 of its
//!   body, so torn writes and flipped bits are detected and recomputed
//!   instead of trusted. Writes go tmp + fsync + rename, and stale
//!   `*.tmp` crash leftovers are swept when a store opens.
//! * **Watchdog** — a monitor thread logs and counts shard attempts
//!   exceeding a deadline ([`Engine::with_watchdog_deadline`]).
//!   Detection only: shard work is pure compute that cannot be safely
//!   killed mid-flight, so the watchdog makes stalls visible
//!   (`gd_campaign_watchdog_stalls_total`) rather than guessing.
//!
//! All of it is exercised deterministically by `gd_chaos` schedules
//! (sites `engine.shard_panic`, `store.*`; see the `chaos` integration
//! tests and `gd-campaign chaos`).

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use gd_obs::Timer;

pub use crate::error::CampaignError;
use crate::fleet::{DispatchContext, ShardDispatcher};
use crate::json::{parse, Json};
use crate::shards::{run_shard, shard_plan, ShardResult, ShardWork};
use crate::spec::CampaignSpec;

/// Result format version written to cache and checkpoint files.
pub const RESULT_VERSION: i64 = 1;

/// Default per-shard attempt budget (first attempt + retries).
pub const DEFAULT_SHARD_ATTEMPTS: u32 = 5;
/// Default watchdog deadline for a single shard attempt.
pub const DEFAULT_WATCHDOG_DEADLINE: Duration = Duration::from_secs(120);
/// Consecutive progress-free fan-out passes before the engine gives up.
const FANOUT_MAX_IDLE_PASSES: u32 = 5;
/// Base delay of the per-shard retry backoff (doubles per attempt).
const SHARD_BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Ceiling of the per-shard retry backoff.
const SHARD_BACKOFF_CAP: Duration = Duration::from_millis(80);
/// Base delay between resubmitted fan-out passes (doubles per idle pass).
const FANOUT_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Ceiling of the fan-out resubmission backoff.
const FANOUT_BACKOFF_CAP: Duration = Duration::from_millis(200);

/// A completed (possibly partial) campaign: the spec, its content
/// address, every completed shard in plan order, and the rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The spec that produced this result.
    pub spec: CampaignSpec,
    /// The spec's [`CampaignSpec::cache_key`] at run time.
    pub cache_key: String,
    /// Completed shard results, in plan order over the selected range.
    pub shards: Vec<ShardResult>,
    /// The report text — byte-identical to the legacy serial binary for
    /// a full-range campaign.
    pub text: String,
}

impl CampaignResult {
    /// The result as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Int(RESULT_VERSION.into())),
            ("cache_key", Json::Str(self.cache_key.clone())),
            ("spec", self.spec.to_json()),
            ("shards", Json::Arr(self.shards.iter().map(ShardResult::to_json).collect())),
            ("text", Json::Str(self.text.clone())),
        ])
    }

    /// Parses a result back from [`CampaignResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<CampaignResult, String> {
        let version = v.get("version").and_then(Json::as_i64).ok_or("result: missing `version`")?;
        if version != RESULT_VERSION {
            return Err(format!("unsupported result version {version}"));
        }
        let cache_key = v
            .get("cache_key")
            .and_then(Json::as_str)
            .ok_or("result: missing `cache_key`")?
            .to_owned();
        let spec = CampaignSpec::from_json(v.get("spec").ok_or("result: missing `spec`")?)?;
        let shards = v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or("result: missing `shards`")?
            .iter()
            .map(ShardResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let text = v.get("text").and_then(Json::as_str).ok_or("result: missing `text`")?.to_owned();
        Ok(CampaignResult { spec, cache_key, shards, text })
    }

    /// Parses a result from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates both JSON syntax errors and shape errors as text.
    pub fn from_json_text(text: &str) -> Result<CampaignResult, String> {
        CampaignResult::from_json(&parse(text).map_err(|e| e.to_string())?)
    }
}

/// `gd_obs` handles for the engine, registered eagerly at engine
/// construction so `/metrics` exposes the families (at zero) before the
/// first campaign runs.
struct EngineMetrics {
    /// `gd_campaign_cache_hits_total`
    cache_hits: Arc<gd_obs::Counter>,
    /// `gd_campaign_cache_misses_total`
    cache_misses: Arc<gd_obs::Counter>,
    /// `gd_campaign_checkpoint_loads_total`
    checkpoint_loads: Arc<gd_obs::Counter>,
    /// `gd_campaign_shards_executed_total`
    shards_executed: Arc<gd_obs::Counter>,
    /// `gd_campaign_shard_ms`
    shard_ms: Arc<gd_obs::Histogram>,
    /// `gd_campaign_shard_retries`
    shard_retries: Arc<gd_obs::Histogram>,
    /// `gd_campaign_shards_quarantined_total`
    shards_quarantined: Arc<gd_obs::Counter>,
    /// `gd_campaign_fanout_retries_total`
    fanout_retries: Arc<gd_obs::Counter>,
    /// `gd_campaign_watchdog_stalls_total`
    watchdog_stalls: Arc<gd_obs::Counter>,
    /// `gd_campaign_store_integrity_failures_total`
    integrity_failures: Arc<gd_obs::Counter>,
    /// `gd_campaign_tmp_files_swept_total`
    tmp_swept: Arc<gd_obs::Counter>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        // The chaos site inventory rides along: any process exposing the
        // engine's families also shows `gd_chaos_injected_total{site=...}`
        // at zero for every site.
        gd_chaos::register_metrics();
        gd_faultsim::register_metrics();
        EngineMetrics {
            cache_hits: gd_obs::counter(
                "gd_campaign_cache_hits_total",
                "campaigns satisfied from the content-addressed result cache",
                &[],
            ),
            cache_misses: gd_obs::counter(
                "gd_campaign_cache_misses_total",
                "store-backed campaigns that had to (re)compute",
                &[],
            ),
            checkpoint_loads: gd_obs::counter(
                "gd_campaign_checkpoint_loads_total",
                "shards adopted from checkpoints instead of recomputing",
                &[],
            ),
            shards_executed: gd_obs::counter(
                "gd_campaign_shards_executed_total",
                "shards actually executed (cache and checkpoint hits excluded)",
                &[],
            ),
            shard_ms: gd_obs::histogram(
                "gd_campaign_shard_ms",
                "wall time per executed shard in milliseconds",
                &[],
            ),
            shard_retries: gd_obs::histogram(
                "gd_campaign_shard_retries",
                "retries per completed shard (0 = first attempt succeeded)",
                &[],
            ),
            shards_quarantined: gd_obs::counter(
                "gd_campaign_shards_quarantined_total",
                "shard attempts that panicked and were quarantined instead of aborting the campaign",
                &[],
            ),
            fanout_retries: gd_obs::counter(
                "gd_campaign_fanout_retries_total",
                "executor fan-out passes that aborted and were resubmitted",
                &[],
            ),
            watchdog_stalls: gd_obs::counter(
                "gd_campaign_watchdog_stalls_total",
                "shard attempts observed exceeding the watchdog deadline",
                &[],
            ),
            integrity_failures: gd_obs::counter(
                "gd_campaign_store_integrity_failures_total",
                "store files rejected by the SHA-256 integrity seal and recomputed",
                &[],
            ),
            tmp_swept: gd_obs::counter(
                "gd_campaign_tmp_files_swept_total",
                "stale *.tmp files removed at store open",
                &[],
            ),
        }
    })
}

/// Progress of a running campaign, reported to [`Engine::run_with`]
/// observers as `(done, total)` over the selected shard range.
pub type ProgressFn<'a> = &'a (dyn Fn(u32, u32) + Sync);

/// The sharded campaign engine. Cheap to construct; all state lives in
/// the optional store directory.
#[derive(Debug)]
pub struct Engine {
    store: Option<PathBuf>,
    executed: AtomicU64,
    shard_attempts: u32,
    watchdog_deadline: Duration,
    dispatcher: Arc<dyn ShardDispatcher>,
}

impl Engine {
    /// An engine with no store: no cache lookups, no checkpoints.
    pub fn ephemeral() -> Engine {
        let _ = engine_metrics();
        Engine {
            store: None,
            executed: AtomicU64::new(0),
            shard_attempts: DEFAULT_SHARD_ATTEMPTS,
            watchdog_deadline: DEFAULT_WATCHDOG_DEADLINE,
            dispatcher: Arc::new(LocalDispatcher),
        }
    }

    /// An engine persisting checkpoints and cached results under `dir`
    /// (created on demand). Stale `*.tmp` files — leftovers of atomic
    /// writes interrupted by a crash — are swept immediately.
    pub fn with_store(dir: impl Into<PathBuf>) -> Engine {
        let metrics = engine_metrics();
        let dir = dir.into();
        let swept = sweep_stale_tmp(&dir);
        if swept > 0 {
            metrics.tmp_swept.add(swept);
            gd_obs::info!(
                "gd_campaign::engine",
                "swept stale tmp files from the store",
                count = swept,
                store = dir.display(),
            );
        }
        Engine {
            store: Some(dir),
            executed: AtomicU64::new(0),
            shard_attempts: DEFAULT_SHARD_ATTEMPTS,
            watchdog_deadline: DEFAULT_WATCHDOG_DEADLINE,
            dispatcher: Arc::new(LocalDispatcher),
        }
    }

    /// Replaces the shard dispatcher (default [`LocalDispatcher`]).
    /// Dispatch is pure execution strategy: checkpointing, caching, and
    /// merging stay in the engine, so output bytes are identical under
    /// any dispatcher.
    #[must_use]
    pub fn with_dispatcher(mut self, dispatcher: Arc<dyn ShardDispatcher>) -> Engine {
        self.dispatcher = dispatcher;
        self
    }

    /// Sets the per-shard attempt budget (default
    /// [`DEFAULT_SHARD_ATTEMPTS`]). A shard panicking on every attempt
    /// fails the campaign with [`CampaignError::ShardFailed`].
    ///
    /// # Panics
    ///
    /// Panics when `attempts` is zero — a shard must get at least one
    /// attempt.
    #[must_use]
    pub fn with_shard_attempts(mut self, attempts: u32) -> Engine {
        assert!(attempts >= 1, "a shard needs at least one attempt");
        self.shard_attempts = attempts;
        self
    }

    /// Sets the stuck-shard watchdog deadline (default
    /// [`DEFAULT_WATCHDOG_DEADLINE`]). Attempts running longer are
    /// logged and counted in `gd_campaign_watchdog_stalls_total`.
    #[must_use]
    pub fn with_watchdog_deadline(mut self, deadline: Duration) -> Engine {
        self.watchdog_deadline = deadline;
        self
    }

    /// The store directory, if any.
    pub fn store(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// How many shards this engine has actually executed (cache and
    /// checkpoint hits don't count) — the cache-effectiveness probe.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Runs a campaign to completion. See [`Engine::run_with`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run_with`].
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignResult, CampaignError> {
        self.run_with(spec, &|_, _| {})
    }

    /// Runs a campaign to completion, invoking `progress` with
    /// `(done, total)` counts as shards finish (including shards
    /// satisfied from checkpoints).
    ///
    /// A stored campaign with the same cache key returns immediately;
    /// otherwise missing shards fan out over [`gd_exec`] (respecting
    /// `spec.threads` via [`gd_exec::with_threads`]) and each completed
    /// shard is checkpointed before the merge. Shard panics are
    /// quarantined and retried; see the module docs for the full
    /// self-healing ladder.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Invalid`] for unusable specs (including shard
    /// ranges outside the plan and target fixtures that do not build),
    /// [`CampaignError::Store`] for store I/O the engine cannot work
    /// around, [`CampaignError::ShardFailed`] /
    /// [`CampaignError::FanoutFailed`] when the retry budgets exhaust,
    /// and [`CampaignError::Render`] if the merged results cannot be
    /// rendered.
    pub fn run_with(
        &self,
        spec: &CampaignSpec,
        progress: ProgressFn<'_>,
    ) -> Result<CampaignResult, CampaignError> {
        spec.validate().map_err(CampaignError::Invalid)?;
        let plan = shard_plan(spec);
        let full_total = plan.len() as u32;
        let (lo, hi) = match spec.shards {
            None => (0, full_total),
            Some((lo, hi)) if hi <= full_total => (lo, hi),
            Some((_, hi)) => {
                return Err(CampaignError::Invalid(format!(
                    "shard range end {hi} exceeds the plan's {full_total} shards"
                )));
            }
        };
        let selected: Vec<(u32, ShardWork)> = (lo..hi).map(|i| (i, plan[i as usize])).collect();
        let total = selected.len() as u32;
        let cache_key = spec.cache_key().map_err(CampaignError::Invalid)?;

        let metrics = engine_metrics();
        if let Some(hit) = self.cache_lookup(&cache_key) {
            metrics.cache_hits.inc();
            gd_obs::debug!("gd_campaign::engine", "cache hit", key = cache_key, shards = total);
            progress(total, total);
            return Ok(hit);
        }
        if self.store.is_some() {
            metrics.cache_misses.inc();
        }

        let ckpt_dir = match &self.store {
            None => None,
            Some(dir) => {
                let key = spec.checkpoint_key().map_err(CampaignError::Invalid)?;
                let d = dir.join("runs").join(key);
                fs::create_dir_all(&d).map_err(|e| {
                    CampaignError::Store(format!("creating checkpoint dir {}: {e}", d.display()))
                })?;
                Some(d)
            }
        };

        // Resume: adopt every selected shard already checkpointed.
        let mut done: Vec<(u32, ShardResult)> = Vec::new();
        if let Some(dir) = &ckpt_dir {
            for &(index, _) in &selected {
                if let Some(result) = load_checkpoint(dir, index) {
                    done.push((index, result));
                }
            }
        }
        metrics.checkpoint_loads.add(done.len() as u64);
        let have: Vec<u32> = done.iter().map(|(i, _)| *i).collect();
        let missing: Vec<(u32, ShardWork)> =
            selected.iter().filter(|(i, _)| !have.contains(i)).copied().collect();

        let finished = AtomicU32::new(done.len() as u32);
        progress(finished.load(Ordering::Relaxed), total);

        let fresh = self.execute(spec, ckpt_dir.as_deref(), missing, total, &finished, progress)?;
        done.extend(fresh);
        done.sort_by_key(|(i, _)| *i);
        let ordered: Vec<(ShardWork, ShardResult)> =
            done.into_iter().map(|(i, r)| (plan[i as usize], r)).collect();
        let text = crate::shards::render(spec, &ordered).map_err(CampaignError::Render)?;
        let result = CampaignResult {
            spec: spec.clone(),
            cache_key: cache_key.clone(),
            shards: ordered.into_iter().map(|(_, r)| r).collect(),
            text,
        };

        if let Some(dir) = &self.store {
            let cache = dir.join("cache");
            fs::create_dir_all(&cache).map_err(|e| {
                CampaignError::Store(format!("creating cache dir {}: {e}", cache.display()))
            })?;
            let body = result
                .to_json()
                .to_string_pretty()
                .map_err(|e| CampaignError::Store(format!("serializing result: {e}")))?;
            write_atomic(&cache.join(format!("{cache_key}.json")), seal(&body).as_bytes())
                .map_err(|e| CampaignError::Store(format!("writing cached result: {e}")))?;
        }
        Ok(result)
    }

    /// Runs `missing` shards through the configured [`ShardDispatcher`].
    /// The engine owns everything that crosses the boundary: the
    /// completion callback counts the execution, checkpoints the result,
    /// and reports progress — identically whether the shard ran on a
    /// local scoped thread or a remote worker.
    fn execute(
        &self,
        spec: &CampaignSpec,
        ckpt_dir: Option<&Path>,
        missing: Vec<(u32, ShardWork)>,
        total: u32,
        finished: &AtomicU32,
        progress: ProgressFn<'_>,
    ) -> Result<Vec<(u32, ShardResult)>, CampaignError> {
        if missing.is_empty() {
            return Ok(Vec::new());
        }
        let metrics = engine_metrics();
        let completed: Mutex<Vec<(u32, ShardResult)>> = Mutex::new(Vec::new());
        let complete = |index: u32, result: ShardResult| {
            metrics.shards_executed.inc();
            self.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(dir) = ckpt_dir {
                // Best-effort: a failed checkpoint write costs
                // resumability, not correctness.
                if let Err(e) = write_checkpoint(dir, index, &result) {
                    gd_obs::warn!(
                        "gd_campaign::engine",
                        "checkpoint write failed",
                        shard = index,
                        error = e,
                    );
                }
            }
            completed.lock().unwrap().push((index, result));
            progress(finished.fetch_add(1, Ordering::Relaxed) + 1, total);
        };
        let ctx = DispatchContext {
            spec,
            missing: &missing,
            complete: &complete,
            attempts: self.shard_attempts,
            watchdog_deadline: self.watchdog_deadline,
        };
        self.dispatcher.dispatch(&ctx)?;
        Ok(completed.into_inner().unwrap())
    }

    /// Looks a finished campaign up by its content address. A missing,
    /// torn, or corrupt cache file is a miss (the engine recomputes and
    /// rewrites).
    pub fn cache_lookup(&self, cache_key: &str) -> Option<CampaignResult> {
        let dir = self.store.as_ref()?;
        let path = dir.join("cache").join(format!("{cache_key}.json"));
        let text = read_store_file(&path, "cached result")?;
        match CampaignResult::from_json_text(&text) {
            Ok(result) if result.cache_key == cache_key => Some(result),
            _ => None,
        }
    }
}

/// The in-process [`ShardDispatcher`]: scoped-thread fan-out over
/// [`gd_exec`] with the full self-healing ladder — each shard attempt is
/// quarantined and retried with seeded-jitter backoff; a fan-out pass
/// aborted below the quarantine keeps its completed shards and resubmits
/// the rest; a watchdog thread flags attempts exceeding the deadline.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalDispatcher;

impl ShardDispatcher for LocalDispatcher {
    fn name(&self) -> &'static str {
        "local"
    }

    fn dispatch(&self, ctx: &DispatchContext<'_>) -> Result<(), CampaignError> {
        let metrics = engine_metrics();
        let spec = ctx.spec;
        let failed: Mutex<Option<CampaignError>> = Mutex::new(None);
        let inflight: Mutex<BTreeMap<u32, Instant>> = Mutex::new(BTreeMap::new());
        let done: Mutex<BTreeSet<u32>> = Mutex::new(BTreeSet::new());
        let stop = AtomicBool::new(false);

        let run_one = |&(index, work): &(u32, ShardWork)| {
            if failed.lock().unwrap().is_some() {
                return; // the campaign is already lost; don't burn cycles
            }
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                inflight.lock().unwrap().insert(index, Instant::now());
                let timer = Timer::start();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    gd_chaos::shard_attempt(index);
                    run_shard(spec, &work)
                }));
                inflight.lock().unwrap().remove(&index);
                match outcome {
                    Ok(result) => {
                        metrics.shard_ms.observe(timer.elapsed_ms());
                        metrics.shard_retries.observe(u64::from(attempt - 1));
                        done.lock().unwrap().insert(index);
                        (ctx.complete)(index, result);
                        return;
                    }
                    Err(payload) => {
                        let cause = panic_message(payload.as_ref());
                        metrics.shards_quarantined.inc();
                        gd_obs::warn!(
                            "gd_campaign::engine",
                            "shard attempt panicked; quarantined",
                            shard = index,
                            attempt = attempt,
                            budget = ctx.attempts,
                            cause = cause,
                        );
                        if attempt >= ctx.attempts {
                            metrics.shard_retries.observe(u64::from(attempt - 1));
                            let mut slot = failed.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(CampaignError::ShardFailed {
                                    shard: index,
                                    label: work.label(),
                                    attempts: attempt,
                                    cause,
                                });
                            }
                            return;
                        }
                        // Seeded jitter: simultaneous failures across
                        // shards must not resubmit in lockstep, and the
                        // schedule must replay under a fixed model seed.
                        std::thread::sleep(retry_backoff(
                            SHARD_BACKOFF_BASE,
                            SHARD_BACKOFF_CAP,
                            attempt - 1,
                            spec.model.seed,
                            u64::from(index),
                        ));
                    }
                }
            }
        };

        // The fan-out itself can abort (a panic in the executor's worker
        // loop, below the per-shard quarantine — gd_chaos's
        // exec.worker_panic models exactly this). Completed shards are
        // already reported through `ctx.complete`; resubmit the rest, and
        // only give up after repeated passes that complete nothing.
        let fanned: Result<(), CampaignError> = std::thread::scope(|s| {
            s.spawn(|| watchdog_loop(&inflight, &stop, ctx.watchdog_deadline, metrics));
            let mut pending: Vec<(u32, ShardWork)> = ctx.missing.to_vec();
            let mut idle_passes = 0u32;
            let out = loop {
                let before = done.lock().unwrap().len();
                let pass = catch_unwind(AssertUnwindSafe(|| match spec.threads {
                    Some(t) => {
                        gd_exec::with_threads(t as usize, || gd_exec::par_map(&pending, &run_one))
                    }
                    None => gd_exec::par_map(&pending, &run_one),
                }));
                match pass {
                    Ok(_) => break Ok(()),
                    Err(payload) => {
                        let cause = panic_message(payload.as_ref());
                        metrics.fanout_retries.inc();
                        let now = done.lock().unwrap().len();
                        if now > before {
                            idle_passes = 0;
                        } else {
                            idle_passes += 1;
                        }
                        if idle_passes >= FANOUT_MAX_IDLE_PASSES {
                            break Err(CampaignError::FanoutFailed {
                                attempts: idle_passes,
                                cause,
                            });
                        }
                        gd_obs::warn!(
                            "gd_campaign::engine",
                            "fan-out aborted; resubmitting missing shards",
                            completed = now,
                            idle_passes = idle_passes,
                            cause = cause,
                        );
                        let have = done.lock().unwrap().clone();
                        pending.retain(|(i, _)| !have.contains(i));
                        std::thread::sleep(backoff(
                            FANOUT_BACKOFF_BASE,
                            FANOUT_BACKOFF_CAP,
                            idle_passes,
                        ));
                    }
                }
            };
            stop.store(true, Ordering::Relaxed);
            out
        });
        fanned?;
        if let Some(err) = failed.into_inner().unwrap() {
            return Err(err);
        }
        Ok(())
    }
}

/// Exponential backoff: `base << n`, saturating at `cap`.
fn backoff(base: Duration, cap: Duration, n: u32) -> Duration {
    base.saturating_mul(1u32 << n.min(16)).min(cap)
}

/// splitmix64's finalizer — the jitter source for [`retry_backoff`].
fn splitmix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`backoff`] with deterministic full jitter: the delay for retry
/// `attempt` of `stream` (e.g. a shard index) under `seed` is a pure
/// function drawn uniformly from `[d/2, d]`, where `d` is the plain
/// exponential delay. Different streams de-synchronize (simultaneous
/// failures don't resubmit in lockstep) while a fixed seed replays the
/// exact schedule — retry timing stays testable.
pub fn retry_backoff(
    base: Duration,
    cap: Duration,
    attempt: u32,
    seed: u64,
    stream: u64,
) -> Duration {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let ceiling = backoff(base, cap, attempt);
    let h = splitmix(
        splitmix(seed ^ stream.wrapping_mul(GOLDEN))
            ^ u64::from(attempt).wrapping_add(1).wrapping_mul(GOLDEN),
    );
    let unit = ((h >> 11) as f64) / ((1u64 << 53) as f64);
    let half = u64::try_from(ceiling.as_nanos() / 2).unwrap_or(u64::MAX);
    Duration::from_nanos(half.saturating_add((half as f64 * unit) as u64))
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    "opaque panic payload".into()
}

/// Polls the in-flight map and flags attempts exceeding `deadline`.
/// Detection only — shard work is pure compute with no safe kill point —
/// but a stall becomes visible in logs and metrics instead of looking
/// like a silently slow campaign. Reports each shard at most once per
/// campaign.
fn watchdog_loop(
    inflight: &Mutex<BTreeMap<u32, Instant>>,
    stop: &AtomicBool,
    deadline: Duration,
    metrics: &EngineMetrics,
) {
    let poll = (deadline / 2).clamp(Duration::from_millis(1), Duration::from_millis(200));
    let mut reported: BTreeSet<u32> = BTreeSet::new();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        for (&shard, started) in inflight.lock().unwrap().iter() {
            let elapsed = started.elapsed();
            if elapsed > deadline && reported.insert(shard) {
                metrics.watchdog_stalls.inc();
                gd_obs::warn!(
                    "gd_campaign::engine",
                    "shard attempt exceeds the watchdog deadline",
                    shard = shard,
                    elapsed_ms = elapsed.as_millis(),
                    deadline_ms = deadline.as_millis(),
                );
            }
        }
    }
}

/// First line of every store file: `#gd-sha256:<hex>\n` over the body.
///
/// The ISSUE calls this a "footer", but a footer cannot survive the
/// fault it exists to catch — truncation eats the end of the file first,
/// deleting the footer along with the evidence. As a *header* the seal
/// survives any torn tail and the hash mismatch convicts it.
pub(crate) const SEAL_PREFIX: &str = "#gd-sha256:";

/// Prepends the integrity seal to a store file body. The fleet module
/// reuses the same seal for shard payloads and results on the wire.
pub(crate) fn seal(body: &str) -> String {
    format!("{SEAL_PREFIX}{}\n{body}", crate::hash::sha256_hex(body.as_bytes()))
}

/// Verifies and strips the integrity seal. Unsealed files (written
/// before the seal existed) pass through — JSON parsing remains their
/// only validation.
pub(crate) fn unseal(text: &str) -> Result<&str, String> {
    let Some(rest) = text.strip_prefix(SEAL_PREFIX) else { return Ok(text) };
    let Some((want, body)) = rest.split_once('\n') else {
        return Err("file truncated inside the seal header".into());
    };
    let got = crate::hash::sha256_hex(body.as_bytes());
    if got != want {
        return Err(format!("seal mismatch: header says {want}, body hashes to {got}"));
    }
    Ok(body)
}

/// Reads a sealed store file, with the gd-chaos read sites applied.
/// `None` is always a recoverable miss; a seal failure additionally
/// counts in `gd_campaign_store_integrity_failures_total`.
fn read_store_file(path: &Path, what: &str) -> Option<String> {
    if !path.exists() {
        return None;
    }
    if gd_chaos::read_dropped() {
        gd_obs::debug!("gd_campaign::engine", "chaos dropped a store read", path = path.display());
        return None;
    }
    let mut bytes = fs::read(path).ok()?;
    gd_chaos::corrupt(&mut bytes);
    let text = String::from_utf8(bytes).ok()?;
    match unseal(&text) {
        Ok(body) => Some(body.to_owned()),
        Err(e) => {
            engine_metrics().integrity_failures.inc();
            gd_obs::warn!(
                "gd_campaign::engine",
                "store file failed its integrity seal; recomputing",
                what = what,
                path = path.display(),
                error = e,
            );
            None
        }
    }
}

fn checkpoint_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard-{index:05}.json"))
}

fn load_checkpoint(dir: &Path, index: u32) -> Option<ShardResult> {
    let text = read_store_file(&checkpoint_path(dir, index), "checkpoint")?;
    let v = parse(&text).ok()?;
    // Stale or mismatched files (e.g. a hand-edited store) are skipped,
    // not trusted: the index recorded inside must match the filename.
    if v.get("index").and_then(Json::as_u64) != Some(u64::from(index)) {
        return None;
    }
    ShardResult::from_json(v.get("result")?).ok()
}

fn write_checkpoint(dir: &Path, index: u32, result: &ShardResult) -> Result<(), String> {
    let body = Json::obj(vec![
        ("version", Json::Int(RESULT_VERSION.into())),
        ("index", Json::Int(index.into())),
        ("result", result.to_json()),
    ])
    .to_string_pretty()
    .map_err(|e| e.to_string())?;
    write_atomic(&checkpoint_path(dir, index), seal(&body).as_bytes()).map_err(|e| e.to_string())
}

/// Writes via a unique sibling temp file + fsync + rename, so readers
/// (and a campaign resuming after a kill) never observe a torn file and
/// the rename never publishes bytes still in the page cache only. Temp
/// names carry the pid and a sequence number — two engines sharing a
/// store cannot clobber each other's in-flight writes — and crash
/// leftovers are swept by [`Engine::with_store`].
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let tmp = path.with_file_name(format!(
        "{file_name}.{}-{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    // The chaos torn-write site publishes a *renamed but truncated* file
    // — the on-disk artifact of a crash mid-write — which the seal must
    // catch on the next read.
    let data: Cow<'_, [u8]> = if gd_chaos::active() {
        let mut owned = bytes.to_vec();
        gd_chaos::tear(&mut owned);
        Cow::Owned(owned)
    } else {
        Cow::Borrowed(bytes)
    };
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&data)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Best-effort directory fsync so the rename itself survives a crash.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Removes stale `*.tmp` files under `root` — the leftovers of atomic
/// writes interrupted by a crash, which would otherwise accumulate
/// forever. Returns how many were removed.
fn sweep_stale_tmp(root: &Path) -> u64 {
    let mut removed = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok()
            {
                removed += 1;
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gd-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A 3-shard Figure 2 slice: big enough to exercise sharding and
    /// resume, small enough (three real branch sweeps, ~0.5 s unoptimized)
    /// to run everywhere.
    fn small_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::fig2();
        spec.shards = Some((0, 3));
        spec
    }

    #[test]
    fn identical_resubmission_is_a_cache_hit() {
        let store = tmp_store("cache");
        let spec = small_spec();
        let engine = Engine::with_store(&store);
        let first = engine.run(&spec).unwrap();
        assert_eq!(engine.executed(), 3, "three shards ran");
        let second = engine.run(&spec).unwrap();
        assert_eq!(engine.executed(), 3, "the resubmission ran nothing");
        assert_eq!(second, first);
        // A fresh engine (a restarted process) hits the same cache file.
        let engine2 = Engine::with_store(&store);
        assert_eq!(engine2.run(&spec).unwrap(), first);
        assert_eq!(engine2.executed(), 0);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn partial_campaigns_checkpoint_and_the_wider_campaign_resumes() {
        let store = tmp_store("resume");
        let spec = small_spec();
        let mut partial = spec.clone();
        partial.shards = Some((0, 2));
        let engine = Engine::with_store(&store);
        let part = engine.run(&partial).unwrap();
        assert_eq!(part.shards.len(), 2);
        assert_eq!(engine.executed(), 2);
        // A *restarted* engine (fresh process state, same store) finds the
        // two checkpointed shards and runs only the third — the checkpoint
        // key strips the shard range, so partial runs seed wider ones.
        let engine2 = Engine::with_store(&store);
        let full = engine2.run(&spec).unwrap();
        assert_eq!(engine2.executed(), 1, "only the missing shard ran");
        assert_eq!(full.shards.len(), 3);
        // The resumed run is indistinguishable from a cold run.
        let cold = Engine::ephemeral().run(&spec).unwrap();
        assert_eq!(full.text, cold.text);
        assert_eq!(full.shards, cold.shards);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn progress_counts_reach_the_total_and_results_round_trip() {
        let spec = small_spec();
        let seen: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());
        let engine = Engine::ephemeral();
        let result = engine
            .run_with(&spec, &|done, total| seen.lock().unwrap().push((done, total)))
            .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.first(), Some(&(0, 3)));
        assert_eq!(seen.last(), Some(&(3, 3)));
        let text = result.to_json().to_string_pretty().unwrap();
        assert_eq!(CampaignResult::from_json_text(&text).unwrap(), result);
    }

    #[test]
    fn shard_range_beyond_the_plan_is_rejected() {
        let mut spec = small_spec();
        spec.shards = Some((0, 99));
        let err = Engine::ephemeral().run(&spec).unwrap_err();
        assert!(matches!(err, CampaignError::Invalid(_)), "{err:?}");
        assert!(!err.retryable(), "an invalid spec never cures itself");
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn corrupt_cache_and_checkpoints_are_recomputed_not_trusted() {
        let store = tmp_store("corrupt");
        let spec = small_spec();
        let engine = Engine::with_store(&store);
        let good = engine.run(&spec).unwrap();
        // Corrupt the cache file: the next run must recompute.
        let cache = store.join("cache").join(format!("{}.json", good.cache_key));
        fs::write(&cache, b"{ truncated").unwrap();
        // Corrupt one checkpoint: only that shard re-runs.
        let ckpt_dir = store.join("runs").join(spec.checkpoint_key().unwrap());
        fs::write(checkpoint_path(&ckpt_dir, 1), b"not json").unwrap();
        let engine2 = Engine::with_store(&store);
        let again = engine2.run(&spec).unwrap();
        assert_eq!(engine2.executed(), 1, "one corrupt checkpoint re-ran");
        assert_eq!(again, good);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn torn_checkpoints_fail_the_seal_and_recompute() {
        let store = tmp_store("torn");
        let spec = small_spec();
        let mut partial = spec.clone();
        partial.shards = Some((0, 2));
        Engine::with_store(&store).run(&partial).unwrap();
        // Tear shard 1's checkpoint mid-body: the seal header survives,
        // the body no longer hashes to it. Parse-only validation would
        // admit some torn files (JSON can truncate onto a valid prefix
        // boundary of a *string* field); the seal convicts all of them.
        let ckpt_dir = store.join("runs").join(spec.checkpoint_key().unwrap());
        let path = checkpoint_path(&ckpt_dir, 1);
        let full = fs::read_to_string(&path).unwrap();
        assert!(full.starts_with(SEAL_PREFIX), "checkpoints are sealed: {full:.40}");
        let torn = &full[..full.len() * 2 / 3];
        fs::write(&path, torn).unwrap();
        let before = engine_metrics().integrity_failures.get();
        let engine2 = Engine::with_store(&store);
        let result = engine2.run(&spec).unwrap();
        assert_eq!(engine2.executed(), 2, "the torn shard and the never-run shard executed");
        assert_eq!(result, Engine::ephemeral().run(&spec).unwrap());
        assert!(engine_metrics().integrity_failures.get() > before, "the seal failure is counted");
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn a_file_truncated_inside_the_seal_header_is_a_miss() {
        let store = tmp_store("torn-header");
        let spec = small_spec();
        let mut partial = spec.clone();
        partial.shards = Some((0, 1));
        Engine::with_store(&store).run(&partial).unwrap();
        let ckpt_dir = store.join("runs").join(spec.checkpoint_key().unwrap());
        let path = checkpoint_path(&ckpt_dir, 0);
        // Keep only the first 20 bytes — inside `#gd-sha256:<hex>`.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..20]).unwrap();
        // Drop the campaign cache so the rerun actually consults the
        // checkpoint instead of short-circuiting on the cached result.
        fs::remove_dir_all(store.join("cache")).unwrap();
        let engine2 = Engine::with_store(&store);
        engine2.run(&partial).unwrap();
        assert_eq!(engine2.executed(), 1, "the truncated checkpoint was not trusted");
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn stale_tmp_files_are_swept_at_store_open() {
        let store = tmp_store("sweep");
        let runs = store.join("runs").join("some-key");
        let cache = store.join("cache");
        fs::create_dir_all(&runs).unwrap();
        fs::create_dir_all(&cache).unwrap();
        // Crash leftovers at both layers, both tmp naming schemes.
        fs::write(runs.join("shard-00001.json.1234-0.tmp"), b"half a checkpoint").unwrap();
        fs::write(cache.join("deadbeef.json.99-7.tmp"), b"half a result").unwrap();
        fs::write(cache.join("keep.json"), b"not a tmp file").unwrap();
        let engine = Engine::with_store(&store);
        assert!(!runs.join("shard-00001.json.1234-0.tmp").exists(), "checkpoint tmp swept");
        assert!(!cache.join("deadbeef.json.99-7.tmp").exists(), "cache tmp swept");
        assert!(cache.join("keep.json").exists(), "non-tmp files untouched");
        drop(engine);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn atomic_writes_leave_no_tmp_residue() {
        let store = tmp_store("no-residue");
        let spec = small_spec();
        Engine::with_store(&store).run(&spec).unwrap();
        let mut stack = vec![store.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    assert!(
                        path.extension().is_none_or(|e| e != "tmp"),
                        "tmp residue after a clean campaign: {}",
                        path.display()
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&store);
    }

    /// Satellite regression: the jittered retry backoff is a pure
    /// function of (seed, stream, attempt) — fixed seed, fixed timing —
    /// bounded by the plain exponential schedule, and de-synchronized
    /// across shards so simultaneous failures don't resubmit in lockstep.
    #[test]
    fn retry_backoff_is_jittered_bounded_and_deterministic() {
        let (base, cap) = (SHARD_BACKOFF_BASE, SHARD_BACKOFF_CAP);
        for attempt in 0..8 {
            for stream in 0..16u64 {
                let d = retry_backoff(base, cap, attempt, 42, stream);
                let ceiling = backoff(base, cap, attempt);
                assert!(
                    d >= ceiling / 2 && d <= ceiling,
                    "attempt {attempt} stream {stream}: {d:?} outside [{:?}, {ceiling:?}]",
                    ceiling / 2
                );
                assert_eq!(
                    d,
                    retry_backoff(base, cap, attempt, 42, stream),
                    "a fixed seed replays the exact schedule"
                );
            }
        }
        let spread: BTreeSet<Duration> =
            (0..16).map(|s| retry_backoff(base, cap, 3, 42, s)).collect();
        assert!(spread.len() > 8, "shards de-synchronize: {spread:?}");
        let a: Vec<Duration> = (0..16).map(|s| retry_backoff(base, cap, 3, 42, s)).collect();
        let b: Vec<Duration> = (0..16).map(|s| retry_backoff(base, cap, 3, 43, s)).collect();
        assert_ne!(a, b, "the seed matters");
    }

    #[test]
    fn seal_round_trips_and_convicts_mutations() {
        let body = "{\"x\": 1}\n";
        let sealed = seal(body);
        assert_eq!(unseal(&sealed).unwrap(), body);
        // Legacy unsealed text passes through.
        assert_eq!(unseal(body).unwrap(), body);
        // Any mutation of the body fails the seal.
        let mutated = sealed.replace("\"x\": 1", "\"x\": 2");
        assert!(unseal(&mutated).is_err());
        // Truncation inside the body fails the seal.
        assert!(unseal(&sealed[..sealed.len() - 2]).is_err());
        // Truncation after the prefix but before the newline fails too.
        assert!(unseal(&sealed[..SEAL_PREFIX.len() + 5]).is_err());
        // A cut *inside* the prefix no longer looks sealed at all; it
        // falls through to JSON validation, which rejects it anyway.
        assert!(unseal(&sealed[..10]).is_ok());
        assert!(parse(unseal(&sealed[..10]).unwrap()).is_err());
    }
}
