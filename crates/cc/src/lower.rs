//! Lowering the C AST to the GlitchResistor IR (clang -O0 style: every
//! variable lives in an alloca; control flow is explicit blocks).

use std::collections::{BTreeSet, HashMap};

use gd_ir::{BinOp, BlockId, Builder, EnumDef, Function, Global, Module, Pred, Ty, ValueId};

use crate::ast::{enum_constant_ref, parse, CFunc, CProgram, CType, Expr, LValue, Stmt};
use crate::lex::CcError;

/// Compilation options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Module name.
    pub module_name: String,
    /// Globals to protect with the data-integrity defense, in addition to
    /// any marked `__sensitive` in the source — the paper's configuration
    /// file of sensitive variables.
    pub sensitive: BTreeSet<String>,
}

/// Compiles C source to an IR module with default options.
///
/// # Errors
///
/// Returns [`CcError`] for syntax errors and semantic problems (unknown
/// names, arity mismatches, assigning to enum constants, …).
pub fn compile_c(src: &str) -> Result<Module, CcError> {
    compile_c_with(src, &Options::default())
}

/// Compiles C source to an IR module.
///
/// # Errors
///
/// See [`compile_c`].
pub fn compile_c_with(src: &str, options: &Options) -> Result<Module, CcError> {
    let prog = parse(src)?;
    lower_program(&prog, options)
}

fn ty_of(cty: &CType) -> Ty {
    match cty {
        CType::Int => Ty::I32,
        CType::Char => Ty::I8,
        CType::Short => Ty::I16,
        CType::Void => Ty::Void,
    }
}

fn lower_program(prog: &CProgram, options: &Options) -> Result<Module, CcError> {
    let mut module = Module::new(&options.module_name);
    for (name, variants) in &prog.enums {
        module.enums.push(EnumDef { name: name.clone(), variants: variants.clone() });
    }
    for g in &prog.globals {
        module.add_global(Global {
            name: g.name.clone(),
            ty: ty_of(&g.ty),
            init: g.init,
            sensitive: g.sensitive || options.sensitive.contains(&g.name),
        });
    }
    // Signatures first so call order does not matter.
    let sigs: HashMap<String, (Vec<Ty>, Ty)> = prog
        .funcs
        .iter()
        .map(|f| {
            let params = f.params.iter().map(|(_, t)| ty_of(t)).collect();
            (f.name.clone(), (params, ty_of(&f.ret)))
        })
        .collect();
    for f in &prog.funcs {
        let func = lower_function(prog, f, &sigs, &module)?;
        module.funcs.push(func);
    }
    Ok(module)
}

struct VarSlot {
    ptr: ValueId,
    ty: Ty,
    volatile: bool,
}

struct Lowerer<'p> {
    prog: &'p CProgram,
    sigs: &'p HashMap<String, (Vec<Ty>, Ty)>,
    globals: HashMap<String, (Ty, bool /*volatile*/)>,
    locals: Vec<HashMap<String, VarSlot>>,
    func: Function,
    block: BlockId,
    /// (continue target, break target) stack.
    loop_stack: Vec<(BlockId, BlockId)>,
    next_block: u32,
    line_hint: usize,
}

impl<'p> Lowerer<'p> {
    fn err(&self, msg: impl Into<String>) -> CcError {
        CcError { line: self.line_hint, msg: msg.into() }
    }

    fn builder(&mut self) -> Builder<'_> {
        Builder::new(&mut self.func, self.block)
    }

    fn fresh_block(&mut self, hint: &str) -> BlockId {
        self.next_block += 1;
        let name = format!("{hint}{}", self.next_block);
        self.func.add_block(&name)
    }

    fn lookup(&self, name: &str) -> Option<&VarSlot> {
        self.locals.iter().rev().find_map(|scope| scope.get(name))
    }
}

fn lower_function(
    prog: &CProgram,
    cf: &CFunc,
    sigs: &HashMap<String, (Vec<Ty>, Ty)>,
    module: &Module,
) -> Result<Function, CcError> {
    let params: Vec<Ty> = cf.params.iter().map(|(_, t)| ty_of(t)).collect();
    let mut func = Function::new(&cf.name, params, ty_of(&cf.ret));
    let entry = func.add_block("entry");
    let globals = module
        .globals
        .iter()
        .map(|g| {
            let volatile =
                prog.globals.iter().find(|cg| cg.name == g.name).is_some_and(|cg| cg.volatile);
            (g.name.clone(), (g.ty, volatile))
        })
        .collect();
    let mut lw = Lowerer {
        prog,
        sigs,
        globals,
        locals: vec![HashMap::new()],
        func,
        block: entry,
        loop_stack: Vec::new(),
        next_block: 0,
        line_hint: 0,
    };
    // Spill parameters into allocas so they are assignable.
    for (i, (pname, pty)) in cf.params.iter().enumerate() {
        let ty = ty_of(pty);
        let param = lw.func.param(i);
        let mut b = lw.builder();
        let slot = b.alloca(ty);
        b.store(slot, param);
        lw.locals
            .last_mut()
            .expect("scope stack non-empty")
            .insert(pname.clone(), VarSlot { ptr: slot, ty, volatile: false });
    }
    lower_stmts(&mut lw, &cf.body)?;
    // Implicit return.
    if lw.func.block(lw.block).term.is_none() {
        let ret_ty = lw.func.ret;
        let mut b = lw.builder();
        if ret_ty == Ty::Void {
            b.ret(None);
        } else {
            let zero = b.const_ty(ret_ty, 0);
            b.ret(Some(zero));
        }
    }
    Ok(lw.func)
}

fn lower_stmts(lw: &mut Lowerer<'_>, stmts: &[Stmt]) -> Result<(), CcError> {
    lw.locals.push(HashMap::new());
    for stmt in stmts {
        // Statements after a terminator are unreachable; park them in a
        // fresh (dead) block so lowering stays well-formed.
        if lw.func.block(lw.block).term.is_some() {
            let dead = lw.fresh_block("dead");
            lw.block = dead;
        }
        lower_stmt(lw, stmt)?;
    }
    lw.locals.pop();
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn lower_stmt(lw: &mut Lowerer<'_>, stmt: &Stmt) -> Result<(), CcError> {
    match stmt {
        Stmt::Decl { name, ty, volatile, init } => {
            let ty = ty_of(ty);
            let init_v = match init {
                Some(e) => Some(lower_expr(lw, e)?),
                None => None,
            };
            let mut b = lw.builder();
            let slot = b.alloca(ty);
            if let Some(v) = init_v {
                store_as(lw, slot, v, ty, *volatile);
            }
            lw.locals
                .last_mut()
                .expect("scope stack non-empty")
                .insert(name.clone(), VarSlot { ptr: slot, ty, volatile: *volatile });
        }
        Stmt::Assign { target, value } => {
            let v = lower_expr(lw, value)?;
            match target {
                LValue::Var(name) => {
                    if let Some(slot) = lw.lookup(name) {
                        let (ptr, ty, volatile) = (slot.ptr, slot.ty, slot.volatile);
                        store_as(lw, ptr, v, ty, volatile);
                    } else if let Some((ty, volatile)) = lw.globals.get(name).copied() {
                        let name = name.clone();
                        let mut b = lw.builder();
                        let ptr = b.global_addr(&name);
                        store_as(lw, ptr, v, ty, volatile);
                    } else {
                        return Err(lw.err(format!("assignment to unknown variable `{name}`")));
                    }
                }
                LValue::Mmio(addr) => {
                    let a = lower_expr(lw, addr)?;
                    let mut b = lw.builder();
                    let ptr = b.insert(gd_ir::Instr::IntToPtr { arg: a }, Ty::Ptr);
                    b.store_volatile(ptr, v);
                }
            }
        }
        Stmt::If { cond, then, els } => {
            let then_bb = lw.fresh_block("if.then");
            let else_bb = lw.fresh_block("if.else");
            let join = lw.fresh_block("if.end");
            lower_cond(lw, cond, then_bb, else_bb)?;
            lw.block = then_bb;
            lower_stmts(lw, then)?;
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(join);
            }
            lw.block = else_bb;
            lower_stmts(lw, els)?;
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(join);
            }
            lw.block = join;
        }
        Stmt::While { cond, body } => {
            let header = lw.fresh_block("while.cond");
            let body_bb = lw.fresh_block("while.body");
            let exit = lw.fresh_block("while.end");
            lw.builder().br(header);
            lw.block = header;
            lower_cond(lw, cond, body_bb, exit)?;
            lw.block = body_bb;
            lw.loop_stack.push((header, exit));
            lower_stmts(lw, body)?;
            lw.loop_stack.pop();
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(header);
            }
            lw.block = exit;
        }
        Stmt::For { init, cond, step, body } => {
            lw.locals.push(HashMap::new()); // for-scope (init declarations)
            if let Some(i) = init {
                lower_stmt(lw, i)?;
            }
            let header = lw.fresh_block("for.cond");
            let body_bb = lw.fresh_block("for.body");
            let latch = lw.fresh_block("for.step");
            let exit = lw.fresh_block("for.end");
            lw.builder().br(header);
            lw.block = header;
            lower_cond(lw, cond, body_bb, exit)?;
            lw.block = body_bb;
            lw.loop_stack.push((latch, exit)); // continue → step
            lower_stmts(lw, body)?;
            lw.loop_stack.pop();
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(latch);
            }
            lw.block = latch;
            if let Some(s) = step {
                lower_stmt(lw, s)?;
            }
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(header);
            }
            lw.block = exit;
            lw.locals.pop();
        }
        Stmt::DoWhile { body, cond } => {
            let body_bb = lw.fresh_block("do.body");
            let cond_bb = lw.fresh_block("do.cond");
            let exit = lw.fresh_block("do.end");
            lw.builder().br(body_bb);
            lw.block = body_bb;
            lw.loop_stack.push((cond_bb, exit));
            lower_stmts(lw, body)?;
            lw.loop_stack.pop();
            if lw.func.block(lw.block).term.is_none() {
                lw.builder().br(cond_bb);
            }
            lw.block = cond_bb;
            lower_cond(lw, cond, body_bb, exit)?;
            lw.block = exit;
        }
        Stmt::Return(value) => {
            let ret_ty = lw.func.ret;
            match (value, ret_ty) {
                (None, Ty::Void) => lw.builder().ret(None),
                (Some(e), Ty::Void) => {
                    let _ = lower_expr(lw, e)?;
                    lw.builder().ret(None);
                }
                (Some(e), ty) => {
                    let v = lower_expr(lw, e)?;
                    let v = cast_to(lw, v, ty);
                    lw.builder().ret(Some(v));
                }
                (None, _) => {
                    let mut b = lw.builder();
                    let zero = b.const_ty(ret_ty, 0);
                    b.ret(Some(zero));
                }
            }
        }
        Stmt::ExprStmt(e) => {
            let _ = lower_expr(lw, e)?;
        }
        Stmt::Break => {
            let Some(&(_, exit)) = lw.loop_stack.last() else {
                return Err(lw.err("`break` outside a loop"));
            };
            lw.builder().br(exit);
        }
        Stmt::Continue => {
            let Some(&(header, _)) = lw.loop_stack.last() else {
                return Err(lw.err("`continue` outside a loop"));
            };
            lw.builder().br(header);
        }
    }
    Ok(())
}

/// Stores `v` (an i32 rvalue) into `ptr` of width `ty`.
fn store_as(lw: &mut Lowerer<'_>, ptr: ValueId, v: ValueId, ty: Ty, volatile: bool) {
    let v = cast_to(lw, v, ty);
    let mut b = lw.builder();
    if volatile {
        b.store_volatile(ptr, v);
    } else {
        b.store(ptr, v);
    }
}

fn cast_to(lw: &mut Lowerer<'_>, v: ValueId, ty: Ty) -> ValueId {
    if lw.func.ty(v) == ty {
        v
    } else {
        lw.builder().cast(v, ty)
    }
}

/// Promotes a loaded/narrow value to `int` (i32), C-style.
fn promote(lw: &mut Lowerer<'_>, v: ValueId) -> ValueId {
    cast_to(lw, v, Ty::I32)
}

/// Lowers a branch on `cond` with full short-circuit semantics.
fn lower_cond(
    lw: &mut Lowerer<'_>,
    cond: &Expr,
    then_bb: BlockId,
    else_bb: BlockId,
) -> Result<(), CcError> {
    match cond {
        Expr::Bin("&&", lhs, rhs) => {
            let mid = lw.fresh_block("land");
            lower_cond(lw, lhs, mid, else_bb)?;
            lw.block = mid;
            lower_cond(lw, rhs, then_bb, else_bb)
        }
        Expr::Bin("||", lhs, rhs) => {
            let mid = lw.fresh_block("lor");
            lower_cond(lw, lhs, then_bb, mid)?;
            lw.block = mid;
            lower_cond(lw, rhs, then_bb, else_bb)
        }
        Expr::Unary("!", inner) => lower_cond(lw, inner, else_bb, then_bb),
        Expr::Bin(op @ ("==" | "!=" | "<" | "<=" | ">" | ">="), lhs, rhs) => {
            let a = lower_expr(lw, lhs)?;
            let b_v = lower_expr(lw, rhs)?;
            let pred = pred_of(op);
            let mut b = lw.builder();
            let c = b.icmp(pred, a, b_v);
            b.cond_br(c, then_bb, else_bb);
            Ok(())
        }
        other => {
            let v = lower_expr(lw, other)?;
            let mut b = lw.builder();
            let zero = b.const_i32(0);
            let c = b.icmp(Pred::Ne, v, zero);
            b.cond_br(c, then_bb, else_bb);
            Ok(())
        }
    }
}

/// C comparisons are signed by default in this subset.
fn pred_of(op: &str) -> Pred {
    match op {
        "==" => Pred::Eq,
        "!=" => Pred::Ne,
        "<" => Pred::Slt,
        "<=" => Pred::Sle,
        ">" => Pred::Sgt,
        ">=" => Pred::Sge,
        _ => unreachable!("not a comparison: {op}"),
    }
}

#[allow(clippy::too_many_lines)]
fn lower_expr(lw: &mut Lowerer<'_>, expr: &Expr) -> Result<ValueId, CcError> {
    match expr {
        Expr::Int(v) => Ok(lw.func.const_int(Ty::I32, *v)),
        Expr::Var(name) => {
            if let Some(slot) = lw.lookup(name) {
                let (ptr, ty, volatile) = (slot.ptr, slot.ty, slot.volatile);
                let mut b = lw.builder();
                let v = if volatile { b.load_volatile(ptr, ty) } else { b.load(ptr, ty) };
                return Ok(promote(lw, v));
            }
            if let Some((ty, volatile)) = lw.globals.get(name).copied() {
                let name = name.clone();
                let mut b = lw.builder();
                let ptr = b.global_addr(&name);
                let v = if volatile { b.load_volatile(ptr, ty) } else { b.load(ptr, ty) };
                return Ok(promote(lw, v));
            }
            if let Some((ename, variant)) = enum_constant_ref(lw.prog, name) {
                let value =
                    crate::ast::enum_constant_value(lw.prog, name).expect("ref implies value");
                return Ok(lw.func.const_enum(
                    Ty::I32,
                    value,
                    gd_ir::EnumRef { enum_name: ename, variant },
                ));
            }
            Err(lw.err(format!("unknown identifier `{name}`")))
        }
        Expr::Unary(op, inner) => {
            let v = lower_expr(lw, inner)?;
            let mut b = lw.builder();
            match *op {
                "-" => {
                    let zero = b.const_i32(0);
                    Ok(b.sub(zero, v))
                }
                "~" => Ok(b.not(v)),
                "!" => {
                    let zero = b.const_i32(0);
                    let c = b.icmp(Pred::Eq, v, zero);
                    Ok(b.cast(c, Ty::I32))
                }
                other => Err(lw.err(format!("unsupported unary `{other}`"))),
            }
        }
        Expr::Bin(op @ ("&&" | "||"), _, _) => {
            // Value context: materialize through a result slot with proper
            // short-circuit control flow.
            let (slot, then_bb, else_bb, join) = {
                let slot = lw.builder().alloca(Ty::I32);
                (
                    slot,
                    lw.fresh_block("bool.true"),
                    lw.fresh_block("bool.false"),
                    lw.fresh_block("bool.end"),
                )
            };
            let _ = op;
            lower_cond(lw, expr, then_bb, else_bb)?;
            lw.block = then_bb;
            {
                let mut b = lw.builder();
                let one = b.const_i32(1);
                b.store(slot, one);
                b.br(join);
            }
            lw.block = else_bb;
            {
                let mut b = lw.builder();
                let zero = b.const_i32(0);
                b.store(slot, zero);
                b.br(join);
            }
            lw.block = join;
            Ok(lw.builder().load(slot, Ty::I32))
        }
        Expr::Bin(op @ ("==" | "!=" | "<" | "<=" | ">" | ">="), lhs, rhs) => {
            let a = lower_expr(lw, lhs)?;
            let b_v = lower_expr(lw, rhs)?;
            let pred = pred_of(op);
            let mut b = lw.builder();
            let c = b.icmp(pred, a, b_v);
            Ok(b.cast(c, Ty::I32))
        }
        Expr::Bin(op, lhs, rhs) => {
            let a = lower_expr(lw, lhs)?;
            let b_v = lower_expr(lw, rhs)?;
            let bop = match *op {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Udiv,
                "%" => BinOp::Urem,
                "&" => BinOp::And,
                "|" => BinOp::Or,
                "^" => BinOp::Xor,
                "<<" => BinOp::Shl,
                ">>" => BinOp::Lshr,
                other => return Err(lw.err(format!("unsupported operator `{other}`"))),
            };
            Ok(lw.builder().bin(bop, a, b_v))
        }
        Expr::Call(name, args) => {
            let Some((params, ret)) = lw.sigs.get(name).cloned() else {
                return Err(lw.err(format!("call to undefined function `{name}`")));
            };
            if params.len() != args.len() {
                return Err(lw.err(format!(
                    "`{name}` takes {} arguments, got {}",
                    params.len(),
                    args.len()
                )));
            }
            let mut values = Vec::with_capacity(args.len());
            for (arg, pty) in args.iter().zip(params.iter()) {
                let v = lower_expr(lw, arg)?;
                values.push(cast_to(lw, v, *pty));
            }
            let name = name.clone();
            let result = lw.builder().call(&name, values, ret);
            if ret == Ty::Void {
                // Give void calls a harmless value for expression position.
                Ok(lw.func.const_int(Ty::I32, 0))
            } else {
                Ok(promote(lw, result))
            }
        }
        Expr::Mmio(addr) => {
            let a = lower_expr(lw, addr)?;
            let mut b = lw.builder();
            let ptr = b.insert(gd_ir::Instr::IntToPtr { arg: a }, Ty::Ptr);
            Ok(b.load_volatile(ptr, Ty::I32))
        }
    }
}
