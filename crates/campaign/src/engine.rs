//! The campaign engine: shards a spec, fans the shards out over
//! [`gd_exec`], merges the results in plan order, and — when given a
//! store directory — persists completed shards as resumable checkpoints
//! and finished campaigns in a content-addressed cache.
//!
//! Store layout (all files are JSON):
//!
//! ```text
//! <store>/cache/<cache-key>.json          completed campaigns
//! <store>/runs/<checkpoint-key>/shard-<index>.json
//! ```
//!
//! The cache key covers everything that determines output bytes (spec,
//! firmware image bytes, fault-model constants, seed, shard range); the
//! checkpoint key additionally strips the shard range, so a partial
//! campaign's shards seed the full campaign and a killed engine resumes
//! where it stopped. Thread count is part of neither: output is
//! bit-identical at any worker count.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use gd_obs::Timer;

use crate::json::{parse, Json};
use crate::shards::{run_shard, shard_plan, ShardResult, ShardWork};
use crate::spec::CampaignSpec;

/// Result format version written to cache and checkpoint files.
pub const RESULT_VERSION: i64 = 1;

/// A completed (possibly partial) campaign: the spec, its content
/// address, every completed shard in plan order, and the rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The spec that produced this result.
    pub spec: CampaignSpec,
    /// The spec's [`CampaignSpec::cache_key`] at run time.
    pub cache_key: String,
    /// Completed shard results, in plan order over the selected range.
    pub shards: Vec<ShardResult>,
    /// The report text — byte-identical to the legacy serial binary for
    /// a full-range campaign.
    pub text: String,
}

impl CampaignResult {
    /// The result as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Int(RESULT_VERSION.into())),
            ("cache_key", Json::Str(self.cache_key.clone())),
            ("spec", self.spec.to_json()),
            ("shards", Json::Arr(self.shards.iter().map(ShardResult::to_json).collect())),
            ("text", Json::Str(self.text.clone())),
        ])
    }

    /// Parses a result back from [`CampaignResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<CampaignResult, String> {
        let version = v.get("version").and_then(Json::as_i64).ok_or("result: missing `version`")?;
        if version != RESULT_VERSION {
            return Err(format!("unsupported result version {version}"));
        }
        let cache_key = v
            .get("cache_key")
            .and_then(Json::as_str)
            .ok_or("result: missing `cache_key`")?
            .to_owned();
        let spec = CampaignSpec::from_json(v.get("spec").ok_or("result: missing `spec`")?)?;
        let shards = v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or("result: missing `shards`")?
            .iter()
            .map(ShardResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let text = v.get("text").and_then(Json::as_str).ok_or("result: missing `text`")?.to_owned();
        Ok(CampaignResult { spec, cache_key, shards, text })
    }

    /// Parses a result from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates both JSON syntax errors and shape errors as text.
    pub fn from_json_text(text: &str) -> Result<CampaignResult, String> {
        CampaignResult::from_json(&parse(text).map_err(|e| e.to_string())?)
    }
}

/// `gd_obs` handles for the engine, registered eagerly at engine
/// construction so `/metrics` exposes the families (at zero) before the
/// first campaign runs.
struct EngineMetrics {
    /// `gd_campaign_cache_hits_total`
    cache_hits: Arc<gd_obs::Counter>,
    /// `gd_campaign_cache_misses_total`
    cache_misses: Arc<gd_obs::Counter>,
    /// `gd_campaign_checkpoint_loads_total`
    checkpoint_loads: Arc<gd_obs::Counter>,
    /// `gd_campaign_shards_executed_total`
    shards_executed: Arc<gd_obs::Counter>,
    /// `gd_campaign_shard_ms`
    shard_ms: Arc<gd_obs::Histogram>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        cache_hits: gd_obs::counter(
            "gd_campaign_cache_hits_total",
            "campaigns satisfied from the content-addressed result cache",
            &[],
        ),
        cache_misses: gd_obs::counter(
            "gd_campaign_cache_misses_total",
            "store-backed campaigns that had to (re)compute",
            &[],
        ),
        checkpoint_loads: gd_obs::counter(
            "gd_campaign_checkpoint_loads_total",
            "shards adopted from checkpoints instead of recomputing",
            &[],
        ),
        shards_executed: gd_obs::counter(
            "gd_campaign_shards_executed_total",
            "shards actually executed (cache and checkpoint hits excluded)",
            &[],
        ),
        shard_ms: gd_obs::histogram(
            "gd_campaign_shard_ms",
            "wall time per executed shard in milliseconds",
            &[],
        ),
    })
}

/// Progress of a running campaign, reported to [`Engine::run_with`]
/// observers as `(done, total)` over the selected shard range.
pub type ProgressFn<'a> = &'a (dyn Fn(u32, u32) + Sync);

/// The sharded campaign engine. Cheap to construct; all state lives in
/// the optional store directory.
#[derive(Debug)]
pub struct Engine {
    store: Option<PathBuf>,
    executed: AtomicU64,
}

impl Engine {
    /// An engine with no store: no cache lookups, no checkpoints.
    pub fn ephemeral() -> Engine {
        let _ = engine_metrics();
        Engine { store: None, executed: AtomicU64::new(0) }
    }

    /// An engine persisting checkpoints and cached results under `dir`
    /// (created on demand).
    pub fn with_store(dir: impl Into<PathBuf>) -> Engine {
        let _ = engine_metrics();
        Engine { store: Some(dir.into()), executed: AtomicU64::new(0) }
    }

    /// The store directory, if any.
    pub fn store(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// How many shards this engine has actually executed (cache and
    /// checkpoint hits don't count) — the cache-effectiveness probe.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Runs a campaign to completion. See [`Engine::run_with`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::run_with`].
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignResult, String> {
        self.run_with(spec, &|_, _| {})
    }

    /// Runs a campaign to completion, invoking `progress` with
    /// `(done, total)` counts as shards finish (including shards
    /// satisfied from checkpoints).
    ///
    /// A stored campaign with the same cache key returns immediately;
    /// otherwise missing shards fan out over [`gd_exec`] (respecting
    /// `spec.threads` via [`gd_exec::with_threads`]) and each completed
    /// shard is checkpointed before the merge.
    ///
    /// # Errors
    ///
    /// Fails on invalid specs, shard ranges outside the plan, target
    /// fixtures that do not build, and store I/O errors.
    pub fn run_with(
        &self,
        spec: &CampaignSpec,
        progress: ProgressFn<'_>,
    ) -> Result<CampaignResult, String> {
        spec.validate()?;
        let plan = shard_plan(spec);
        let full_total = plan.len() as u32;
        let (lo, hi) = match spec.shards {
            None => (0, full_total),
            Some((lo, hi)) if hi <= full_total => (lo, hi),
            Some((_, hi)) => {
                return Err(format!("shard range end {hi} exceeds the plan's {full_total} shards"));
            }
        };
        let selected: Vec<(u32, ShardWork)> = (lo..hi).map(|i| (i, plan[i as usize])).collect();
        let total = selected.len() as u32;
        let cache_key = spec.cache_key()?;

        let metrics = engine_metrics();
        if let Some(hit) = self.cache_lookup(&cache_key) {
            metrics.cache_hits.inc();
            gd_obs::debug!("gd_campaign::engine", "cache hit", key = cache_key, shards = total);
            progress(total, total);
            return Ok(hit);
        }
        if self.store.is_some() {
            metrics.cache_misses.inc();
        }

        let ckpt_dir = match &self.store {
            None => None,
            Some(dir) => {
                let d = dir.join("runs").join(spec.checkpoint_key()?);
                fs::create_dir_all(&d)
                    .map_err(|e| format!("creating checkpoint dir {}: {e}", d.display()))?;
                Some(d)
            }
        };

        // Resume: adopt every selected shard already checkpointed.
        let mut done: Vec<(u32, ShardResult)> = Vec::new();
        if let Some(dir) = &ckpt_dir {
            for &(index, _) in &selected {
                if let Some(result) = load_checkpoint(dir, index) {
                    done.push((index, result));
                }
            }
        }
        metrics.checkpoint_loads.add(done.len() as u64);
        let have: Vec<u32> = done.iter().map(|(i, _)| *i).collect();
        let missing: Vec<(u32, ShardWork)> =
            selected.iter().filter(|(i, _)| !have.contains(i)).copied().collect();

        let finished = AtomicU32::new(done.len() as u32);
        progress(finished.load(Ordering::Relaxed), total);

        let run_one = |&(index, work): &(u32, ShardWork)| {
            let timer = Timer::start();
            let result = run_shard(spec, &work);
            metrics.shard_ms.observe(timer.elapsed_ms());
            metrics.shards_executed.inc();
            self.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(dir) = &ckpt_dir {
                // Best-effort: a failed checkpoint write costs resumability,
                // not correctness.
                if let Err(e) = write_checkpoint(dir, index, &result) {
                    gd_obs::warn!(
                        "gd_campaign::engine",
                        "checkpoint write failed",
                        shard = index,
                        error = e,
                    );
                }
            }
            progress(finished.fetch_add(1, Ordering::Relaxed) + 1, total);
            result
        };
        let fresh: Vec<ShardResult> = match spec.threads {
            Some(t) => gd_exec::with_threads(t as usize, || gd_exec::par_map(&missing, run_one)),
            None => gd_exec::par_map(&missing, run_one),
        };

        done.extend(missing.iter().map(|(i, _)| *i).zip(fresh));
        done.sort_by_key(|(i, _)| *i);
        let ordered: Vec<(ShardWork, ShardResult)> =
            done.into_iter().map(|(i, r)| (plan[i as usize], r)).collect();
        let text = crate::shards::render(spec, &ordered)?;
        let result = CampaignResult {
            spec: spec.clone(),
            cache_key: cache_key.clone(),
            shards: ordered.into_iter().map(|(_, r)| r).collect(),
            text,
        };

        if let Some(dir) = &self.store {
            let cache = dir.join("cache");
            fs::create_dir_all(&cache)
                .map_err(|e| format!("creating cache dir {}: {e}", cache.display()))?;
            let body = result
                .to_json()
                .to_string_pretty()
                .map_err(|e| format!("serializing result: {e}"))?;
            write_atomic(&cache.join(format!("{cache_key}.json")), body.as_bytes())
                .map_err(|e| format!("writing cached result: {e}"))?;
        }
        Ok(result)
    }

    /// Looks a finished campaign up by its content address. A missing or
    /// corrupt cache file is a miss (the engine recomputes and rewrites).
    pub fn cache_lookup(&self, cache_key: &str) -> Option<CampaignResult> {
        let dir = self.store.as_ref()?;
        let path = dir.join("cache").join(format!("{cache_key}.json"));
        let text = fs::read_to_string(path).ok()?;
        match CampaignResult::from_json_text(&text) {
            Ok(result) if result.cache_key == cache_key => Some(result),
            _ => None,
        }
    }
}

fn checkpoint_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard-{index:05}.json"))
}

fn load_checkpoint(dir: &Path, index: u32) -> Option<ShardResult> {
    let text = fs::read_to_string(checkpoint_path(dir, index)).ok()?;
    let v = parse(&text).ok()?;
    // Stale or mismatched files (e.g. a hand-edited store) are skipped,
    // not trusted: the index recorded inside must match the filename.
    if v.get("index").and_then(Json::as_u64) != Some(u64::from(index)) {
        return None;
    }
    ShardResult::from_json(v.get("result")?).ok()
}

fn write_checkpoint(dir: &Path, index: u32, result: &ShardResult) -> Result<(), String> {
    let body = Json::obj(vec![
        ("version", Json::Int(RESULT_VERSION.into())),
        ("index", Json::Int(index.into())),
        ("result", result.to_json()),
    ])
    .to_string_pretty()
    .map_err(|e| e.to_string())?;
    write_atomic(&checkpoint_path(dir, index), body.as_bytes()).map_err(|e| e.to_string())
}

/// Writes via a sibling temp file + rename, so readers (and a campaign
/// resuming after a kill) never observe a torn file.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.to_path_buf();
    tmp.set_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gd-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A 3-shard Figure 2 slice: big enough to exercise sharding and
    /// resume, small enough (three real branch sweeps, ~0.5 s unoptimized)
    /// to run everywhere.
    fn small_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::fig2();
        spec.shards = Some((0, 3));
        spec
    }

    #[test]
    fn identical_resubmission_is_a_cache_hit() {
        let store = tmp_store("cache");
        let spec = small_spec();
        let engine = Engine::with_store(&store);
        let first = engine.run(&spec).unwrap();
        assert_eq!(engine.executed(), 3, "three shards ran");
        let second = engine.run(&spec).unwrap();
        assert_eq!(engine.executed(), 3, "the resubmission ran nothing");
        assert_eq!(second, first);
        // A fresh engine (a restarted process) hits the same cache file.
        let engine2 = Engine::with_store(&store);
        assert_eq!(engine2.run(&spec).unwrap(), first);
        assert_eq!(engine2.executed(), 0);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn partial_campaigns_checkpoint_and_the_wider_campaign_resumes() {
        let store = tmp_store("resume");
        let spec = small_spec();
        let mut partial = spec.clone();
        partial.shards = Some((0, 2));
        let engine = Engine::with_store(&store);
        let part = engine.run(&partial).unwrap();
        assert_eq!(part.shards.len(), 2);
        assert_eq!(engine.executed(), 2);
        // A *restarted* engine (fresh process state, same store) finds the
        // two checkpointed shards and runs only the third — the checkpoint
        // key strips the shard range, so partial runs seed wider ones.
        let engine2 = Engine::with_store(&store);
        let full = engine2.run(&spec).unwrap();
        assert_eq!(engine2.executed(), 1, "only the missing shard ran");
        assert_eq!(full.shards.len(), 3);
        // The resumed run is indistinguishable from a cold run.
        let cold = Engine::ephemeral().run(&spec).unwrap();
        assert_eq!(full.text, cold.text);
        assert_eq!(full.shards, cold.shards);
        let _ = fs::remove_dir_all(&store);
    }

    #[test]
    fn progress_counts_reach_the_total_and_results_round_trip() {
        use std::sync::Mutex;
        let spec = small_spec();
        let seen: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());
        let engine = Engine::ephemeral();
        let result = engine
            .run_with(&spec, &|done, total| seen.lock().unwrap().push((done, total)))
            .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.first(), Some(&(0, 3)));
        assert_eq!(seen.last(), Some(&(3, 3)));
        let text = result.to_json().to_string_pretty().unwrap();
        assert_eq!(CampaignResult::from_json_text(&text).unwrap(), result);
    }

    #[test]
    fn shard_range_beyond_the_plan_is_rejected() {
        let mut spec = small_spec();
        spec.shards = Some((0, 99));
        let err = Engine::ephemeral().run(&spec).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn corrupt_cache_and_checkpoints_are_recomputed_not_trusted() {
        let store = tmp_store("corrupt");
        let spec = small_spec();
        let engine = Engine::with_store(&store);
        let good = engine.run(&spec).unwrap();
        // Corrupt the cache file: the next run must recompute.
        let cache = store.join("cache").join(format!("{}.json", good.cache_key));
        fs::write(&cache, b"{ truncated").unwrap();
        // Corrupt one checkpoint: only that shard re-runs.
        let ckpt_dir = store.join("runs").join(spec.checkpoint_key().unwrap());
        fs::write(checkpoint_path(&ckpt_dir, 1), b"not json").unwrap();
        let engine2 = Engine::with_store(&store);
        let again = engine2.run(&spec).unwrap();
        assert_eq!(engine2.executed(), 1, "one corrupt checkpoint re-ran");
        assert_eq!(again, good);
        let _ = fs::remove_dir_all(&store);
    }
}
