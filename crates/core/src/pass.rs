//! Pass infrastructure: the pass trait, instrumentation report, and shared
//! CFG-surgery utilities used by the defense passes.

use gd_ir::{BlockId, Function, Instr, Module, Terminator, Ty, ValueDef, ValueId};

use crate::config::Config;

/// Counters describing what a hardening run instrumented.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Conditional branches whose true arm got a redundant check.
    pub branches_instrumented: u32,
    /// Loop-guard exit edges that got a redundant check.
    pub loops_instrumented: u32,
    /// Loads of sensitive globals now integrity-checked.
    pub loads_checked: u32,
    /// Stores to sensitive globals now shadowed.
    pub stores_shadowed: u32,
    /// `gr_delay()` call sites injected.
    pub delays_injected: u32,
    /// Functions whose constant returns were diversified.
    pub returns_rewritten: u32,
    /// Enums rewritten to Reed–Solomon constants.
    pub enums_rewritten: u32,
}

impl Report {
    /// Merges another report's counters into this one (saturating — a
    /// merged report never wraps, however many sub-reports feed it).
    pub fn merge(&mut self, other: &Report) {
        self.branches_instrumented =
            self.branches_instrumented.saturating_add(other.branches_instrumented);
        self.loops_instrumented = self.loops_instrumented.saturating_add(other.loops_instrumented);
        self.loads_checked = self.loads_checked.saturating_add(other.loads_checked);
        self.stores_shadowed = self.stores_shadowed.saturating_add(other.stores_shadowed);
        self.delays_injected = self.delays_injected.saturating_add(other.delays_injected);
        self.returns_rewritten = self.returns_rewritten.saturating_add(other.returns_rewritten);
        self.enums_rewritten = self.enums_rewritten.saturating_add(other.enums_rewritten);
    }

    /// Sum of all counters (total instrumentation actions).
    pub fn total(&self) -> u64 {
        u64::from(self.branches_instrumented)
            + u64::from(self.loops_instrumented)
            + u64::from(self.loads_checked)
            + u64::from(self.stores_shadowed)
            + u64::from(self.delays_injected)
            + u64::from(self.returns_rewritten)
            + u64::from(self.enums_rewritten)
    }
}

/// The counters one pass contributed to a hardening run.
///
/// [`crate::harden_with_reports`] runs every pass against a *fresh*
/// [`Report`] and keeps the per-pass attribution here; the totals are
/// recovered by [`Report::merge`]. Before this existed, all passes wrote
/// into one shared report, so module-level counts (e.g.
/// `enums_rewritten`) could not be told apart from per-function ones
/// once a multi-function module had been hardened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// The pass that produced the counts ([`Pass::name`]).
    pub pass: &'static str,
    /// What it instrumented.
    pub counts: Report,
}

/// Runs one pass with a fresh report, verifying the module afterwards in
/// debug builds (a pass that emits invalid IR is a bug caught here, at
/// the pass boundary, rather than at an arbitrary later consumer).
///
/// # Panics
///
/// Panics under `debug_assertions` when the pass output fails
/// [`gd_ir::verify_module`].
pub fn run_pass(pass: &dyn Pass, module: &mut Module, config: &Config) -> PassReport {
    let mut counts = Report::default();
    pass.run(module, config, &mut counts);
    #[cfg(debug_assertions)]
    if let Err(e) = gd_ir::verify_module(module) {
        panic!("pass `{}` produced invalid IR: {e}", pass.name());
    }
    PassReport { pass: pass.name(), counts }
}

/// A module transformation.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;

    /// Runs the pass over the module.
    fn run(&self, module: &mut Module, config: &Config, report: &mut Report);
}

/// Name of the detection-reaction function (paper §VI-B-c). The reaction is
/// application-specific; GlitchResistor only guarantees it is called.
pub const DETECT_FN: &str = "gr_detected";
/// Name of the random-delay runtime function (paper §VI-1).
pub const DELAY_FN: &str = "gr_delay";
/// Name of the seed-initialization runtime function.
pub const SEED_INIT_FN: &str = "gr_seed_init";

/// Whether `name` is part of the GlitchResistor runtime (excluded from the
/// delay defense to avoid self-recursion).
pub fn is_runtime_fn(name: &str) -> bool {
    name.starts_with("gr_") || name.starts_with("__gr_")
}

/// Interposes a new block on the edge `from → to`, returning the new block.
///
/// The new block is empty with a `br to` terminator; `from`'s terminator is
/// rewired and phis in `to` are updated to see the new predecessor. When
/// `from` has *two* edges to `to` (a cond-br with equal arms), only the
/// requested arm should be rewired — pass `arm` to disambiguate.
pub fn split_edge(func: &mut Function, from: BlockId, to: BlockId, arm: EdgeArm) -> BlockId {
    let name = format!("{}.gr{}", func.block(to).name, func.block_count());
    let mid = func.add_block(&name);
    func.block_mut(mid).term = Some(Terminator::Br { target: to });

    match func.block_mut(from).term.as_mut().expect("from must be terminated") {
        Terminator::Br { target } => {
            debug_assert_eq!(*target, to);
            *target = mid;
        }
        Terminator::CondBr { then_bb, else_bb, .. } => match arm {
            EdgeArm::Then => {
                debug_assert_eq!(*then_bb, to);
                *then_bb = mid;
            }
            EdgeArm::Else => {
                debug_assert_eq!(*else_bb, to);
                *else_bb = mid;
            }
            EdgeArm::Any => {
                if *then_bb == to {
                    *then_bb = mid;
                } else {
                    debug_assert_eq!(*else_bb, to);
                    *else_bb = mid;
                }
            }
        },
        Terminator::Ret { .. } => panic!("ret has no successors to split"),
    }

    // Phis in `to` now receive the value from `mid` instead of `from`.
    retarget_phis(func, to, from, mid);
    mid
}

/// Which arm of a conditional branch an edge split applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeArm {
    /// The true arm.
    Then,
    /// The false arm.
    Else,
    /// Whichever arm matches (unambiguous edges).
    Any,
}

/// Rewrites phi incomings in `bb` that name `old_pred` to `new_pred`.
pub fn retarget_phis(func: &mut Function, bb: BlockId, old_pred: BlockId, new_pred: BlockId) {
    let phi_ids: Vec<ValueId> = func
        .block(bb)
        .instrs
        .iter()
        .copied()
        .filter(|&id| matches!(func.value(id), ValueDef::Instr(Instr::Phi { .. })))
        .collect();
    for id in phi_ids {
        if let ValueDef::Instr(Instr::Phi { incomings }) = func.value_mut(id) {
            for (pred, _) in incomings.iter_mut() {
                if *pred == old_pred {
                    *pred = new_pred;
                }
            }
        }
    }
}

/// Recursively clones the pure computation chain that produces `v` into
/// `target` (appending in dependency order), reusing any value that is not
/// replicable (volatile loads, calls, phis, params, constants, allocas).
///
/// Returns the clone (or `v` itself when it cannot be replicated), plus the
/// number of instructions cloned.
pub fn clone_chain(func: &mut Function, v: ValueId, target: BlockId) -> (ValueId, u32) {
    match func.value(v).clone() {
        ValueDef::Instr(instr) if instr.replicable() => {
            let mut cloned = 0;
            let mut new_instr = instr.clone();
            for op in instr.operands() {
                let (new_op, n) = clone_chain(func, op, target);
                cloned += n;
                if new_op != op {
                    // Replace only this operand occurrence-by-value.
                    new_instr.replace_operand(op, new_op);
                }
            }
            let ty = func.ty(v);
            let id = func.create_instr(new_instr, ty);
            func.block_mut(target).instrs.push(id);
            (id, cloned + 1)
        }
        _ => (v, 0),
    }
}

/// Appends a `call gr_detected()` + `br cont` trampoline block.
pub fn detect_trampoline(func: &mut Function, cont: BlockId) -> BlockId {
    let name = format!("gr.detect{}", func.block_count());
    let bb = func.add_block(&name);
    let call =
        func.create_instr(Instr::Call { callee: DETECT_FN.to_owned(), args: vec![] }, Ty::Void);
    func.block_mut(bb).instrs.push(call);
    func.block_mut(bb).term = Some(Terminator::Br { target: cont });
    bb
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_ir::{parse_module, verify_module, Builder, Pred};

    #[test]
    fn split_edge_rewires_phis() {
        let src = "
fn @f(%c: i1) -> i32 {
entry:
  br %c, a, join
a:
  br join
join:
  %1 = phi i32 [ 1, entry ], [ 2, a ]
  ret i32 %1
}
";
        let mut m = parse_module(src).unwrap();
        let f = m.func_mut("f").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let join = f.block_by_name("join").unwrap();
        let mid = split_edge(f, entry, join, EdgeArm::Else);
        assert_eq!(f.block(mid).term, Some(Terminator::Br { target: join }));
        verify_module(&m).unwrap();
    }

    #[test]
    fn clone_chain_replicates_pure_math_only() {
        let mut f = Function::new("f", vec![gd_ir::Ty::Ptr], gd_ir::Ty::Void);
        let entry = f.add_block("entry");
        let target = f.add_block("target");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        let v = b.load_volatile(p, gd_ir::Ty::I32);
        let one = b.const_i32(1);
        let sum = b.add(v, one);
        let two = b.const_i32(2);
        let prod = b.bin(gd_ir::BinOp::Mul, sum, two);
        let zero = b.const_i32(0);
        let cmp = b.icmp(Pred::Eq, prod, zero);
        b.ret(None);
        let (clone, n) = clone_chain(&mut f, cmp, target);
        assert_ne!(clone, cmp);
        // icmp + mul + add cloned; the volatile load and constants reused.
        assert_eq!(n, 3);
        assert_eq!(f.block(target).instrs.len(), 3);
        // The cloned chain bottoms out at the same volatile load.
        let ValueDef::Instr(Instr::Icmp { lhs, .. }) = func_val(&f, clone) else {
            panic!("clone should be an icmp")
        };
        let ValueDef::Instr(Instr::Bin { lhs: sum_l, .. }) = func_val(&f, *lhs) else {
            panic!("lhs should be the cloned mul")
        };
        let ValueDef::Instr(Instr::Bin { lhs: load_ref, .. }) = func_val(&f, *sum_l) else {
            panic!("nested clone should be the add")
        };
        assert_eq!(*load_ref, v, "volatile load is shared, not cloned");
    }

    fn func_val(f: &Function, id: ValueId) -> &ValueDef {
        f.value(id)
    }

    #[test]
    fn runtime_name_detection() {
        assert!(is_runtime_fn("gr_delay"));
        assert!(is_runtime_fn("__gr_seed_init"));
        assert!(!is_runtime_fn("main"));
        assert!(!is_runtime_fn("grow"));
    }

    #[test]
    fn report_merge() {
        let mut a = Report { branches_instrumented: 2, ..Report::default() };
        let b = Report { branches_instrumented: 1, delays_injected: 5, ..Report::default() };
        a.merge(&b);
        assert_eq!(a.branches_instrumented, 3);
        assert_eq!(a.delays_injected, 5);
    }

    #[test]
    fn report_merge_saturates_instead_of_wrapping() {
        let mut a = Report { enums_rewritten: u32::MAX - 1, ..Report::default() };
        let b = Report { enums_rewritten: 5, ..Report::default() };
        a.merge(&b);
        assert_eq!(a.enums_rewritten, u32::MAX);
    }

    // The auto-verification only fires in debug builds; in release the
    // broken output would flow through silently, so there is nothing to
    // assert there.
    #[cfg(debug_assertions)]
    #[test]
    fn broken_pass_output_is_caught_by_run_pass() {
        use crate::config::Defenses;

        /// A deliberately-broken pass: drops every terminator, leaving
        /// blocks unterminated (an IR invariant violation).
        struct ClobberTerminators;
        impl Pass for ClobberTerminators {
            fn name(&self) -> &'static str {
                "clobber-terminators"
            }
            fn run(&self, module: &mut Module, _config: &Config, _report: &mut Report) {
                for f in &mut module.funcs {
                    for bb in f.block_ids().collect::<Vec<_>>() {
                        f.block_mut(bb).term = None;
                    }
                }
            }
        }

        let mut m = parse_module("fn @f() -> void {\nentry:\n  ret void\n}\n").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pass(&ClobberTerminators, &mut m, &Config::new(Defenses::NONE))
        }));
        let payload = result.expect_err("invalid pass output must panic under debug_assertions");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("clobber-terminators"), "panic names the pass: {msg}");
    }
}
