//! # gd-firmware — the evaluation firmware of the reproduction
//!
//! IR programs corresponding to the firmware the paper evaluates
//! GlitchResistor on (§VII):
//!
//! - [`while_not_a`] — the worst-case guard (`while (!a)` over a volatile
//!   variable) attacked in Table VI;
//! - [`if_a_eq_success`] — the best-case guard (`if (a == SUCCESS)` over an
//!   uninitialized enum) attacked in Table VI;
//! - [`boot`] — a CubeMX-style boot image (HAL init loop, tick counter
//!   marked sensitive, ENUM + constant-return check functions) measured in
//!   Tables IV (cycles) and V (bytes).
//!
//! All firmware raises the GPIO trigger (a volatile store to
//! `0x4800_0014`) right before the guarded region, giving the glitcher the
//! paper's "perfect trigger".

#![warn(missing_docs)]
#![warn(clippy::all)]

use gd_ir::{parse_module, Module};

/// `r0` marker returned by `main` when the protected path is reached.
pub const SUCCESS_MARKER: u32 = 0x00AC_CE55;

/// Marker returned by the boot firmware when initialization completes.
pub const BOOT_MARKER: u32 = 0x0000_B007;

/// The trigger register (GPIOA ODR).
pub const TRIGGER_MMIO: u32 = 0x4800_0014;

fn must_parse(src: &str) -> Module {
    match parse_module(src) {
        Ok(m) => m,
        Err(e) => panic!("builtin firmware failed to parse: {e}"),
    }
}

/// The Table VI worst case: an infinite `while (!a)` loop over a volatile
/// global; escaping the loop returns [`SUCCESS_MARKER`].
pub fn while_not_a() -> Module {
    must_parse(
        "
module while_not_a

global @a : i32 = 0

fn @main() -> i32 {
entry:
  %t = inttoptr i32 0x48000014
  store volatile i32 1, %t
  br loop
loop:
  %p = globaladdr @a
  %v = load volatile i32, %p
  %c = icmp eq i32 %v, 0
  br %c, loop, exit
exit:
  ret i32 0xACCE55
}
",
    )
}

/// The Table VI best case: `if (a == SUCCESS)` over an uninitialized enum
/// variable initialized to `FAILURE`; the success window is a handful of
/// cycles. The untaken path parks the core.
pub fn if_a_eq_success() -> Module {
    must_parse(
        "
module if_a_eq_success

enum Status { FAILURE, SUCCESS }
global @a : i32 = 0

fn @main() -> i32 {
entry:
  %t = inttoptr i32 0x48000014
  store volatile i32 1, %t
  %p = globaladdr @a
  %v = load volatile i32, %p
  %c = icmp eq i32 %v, Status::SUCCESS
  br %c, win, lose
win:
  ret i32 0xACCE55
lose:
  br spin
spin:
  br spin
}
",
    )
}

/// The Table IV/V boot firmware: a CubeMX-shaped image — peripheral
/// initialization routines, HAL register loops, a sensitive tick counter,
/// an ENUM status type, and a constant-return check function whose
/// "success" path is designed to be impossible (`tick == 0` right after
/// incrementing it).
///
/// The peripheral-init functions are synthesized to give the image a
/// realistic CubeMX footprint (a few KiB of straight-line register
/// configuration) while booting in roughly the paper's 1,700 cycles.
pub fn boot() -> Module {
    let mut src = String::from(
        "
module boot

enum BootStatus { FAILURE, SUCCESS }
global @tick : i32 = 0 sensitive
global @rcc_cr : i32 = 0
global @gpio_moder : i32 = 0
global @uart_out : i32 = 0
global @flash_acr : i32 = 5
",
    );
    // Peripheral blocks: each init_<p> performs a burst of volatile
    // configuration stores with derived values, CubeMX-style.
    let peripherals = [
        ("rcc", 0x4002_1000u32, 8),
        ("gpioa", 0x4800_0100, 6),
        ("usart1", 0x4001_3800, 6),
        ("systick", 0xE000_E010, 4),
        ("adc", 0x4001_2400, 6),
        ("dma", 0x4002_0000, 6),
        ("exti", 0x4001_0400, 4),
        ("tim3", 0x4000_0400, 6),
    ];
    for (name, base, regs) in peripherals {
        src.push_str(&format!("\nfn @init_{name}() -> void {{\nentry:\n"));
        for v in 0..regs {
            let addr = base + v * 4;
            // A couple of derived values per register write, like real HAL
            // code computing masked fields.
            src.push_str(&format!("  %a{v} = inttoptr i32 {addr:#x}\n"));
            src.push_str(&format!("  %b{v} = shl i32 {r}, 3\n", r = v + 1));
            src.push_str(&format!("  %c{v} = or i32 %b{v}, {bits:#x}\n", bits = 0x11 + v));
            src.push_str(&format!("  store volatile i32 %c{v}, %a{v}\n"));
        }
        src.push_str("  ret void\n}\n");
    }
    src.push_str(
        "
fn @hal_init() -> void {
entry:
  call void @init_rcc()
  call void @init_gpioa()
  call void @init_usart1()
  call void @init_systick()
  call void @init_adc()
  call void @init_dma()
  call void @init_exti()
  call void @init_tim3()
  br clock
clock:
  %i = phi i32 [ 0, entry ], [ %i2, clock ]
  %p = globaladdr @rcc_cr
  %v = shl i32 %i, 2
  %v2 = or i32 %v, 1
  store volatile i32 %v2, %p
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, 6
  br %c, clock, gpio
gpio:
  %j = phi i32 [ 0, clock ], [ %j2, gpio ]
  %q = globaladdr @gpio_moder
  %w = shl i32 1, %j
  store volatile i32 %w, %q
  %j2 = add i32 %j, 1
  %d = icmp ult i32 %j2, 4
  br %d, gpio, done
done:
  ret void
}

fn @crc_mix(%x: i32) -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, join ]
  %acc = phi i32 [ %x, entry ], [ %acc3, join ]
  %low = and i32 %acc, 1
  %sh = lshr i32 %acc, 1
  %c = icmp ne i32 %low, 0
  br %c, flip, keep
flip:
  %fx = xor i32 %sh, 0xEDB88320
  br join
keep:
  br join
join:
  %acc3 = phi i32 [ %fx, flip ], [ %sh, keep ]
  %i2 = add i32 %i, 1
  %more = icmp ult i32 %i2, 4
  br %more, loop, out
out:
  ret i32 %acc3
}

fn @uart_putc(%ch: i32) -> void {
entry:
  br wait
wait:
  %sr = inttoptr i32 0x40013818
  %st = load volatile i32, %sr
  %rdy = and i32 %st, 0x80
  %c = icmp eq i32 %rdy, 0
  br %c, wait, send
send:
  %dr = inttoptr i32 0x40013828
  store volatile i32 %ch, %dr
  ret void
}

fn @uart_puts_marker() -> void {
entry:
  call void @uart_putc(0x47)
  call void @uart_putc(0x52)
  call void @uart_putc(0x21)
  call void @uart_putc(0x0A)
  ret void
}

fn @spi_xfer(%out: i32) -> i32 {
entry:
  %dr = inttoptr i32 0x4001300C
  store volatile i32 %out, %dr
  br wait
wait:
  %sr = inttoptr i32 0x40013008
  %st = load volatile i32, %sr
  %rdy = and i32 %st, 1
  %c = icmp eq i32 %rdy, 0
  br %c, wait, done
done:
  %in = load volatile i32, %dr
  ret i32 %in
}

fn @i2c_probe(%addrsel: i32) -> i32 {
entry:
  %cr = inttoptr i32 0x40005400
  %v = shl i32 %addrsel, 1
  %v2 = or i32 %v, 1
  store volatile i32 %v2, %cr
  %sr = inttoptr i32 0x40005414
  %st = load volatile i32, %sr
  %ack = and i32 %st, 2
  %c = icmp ne i32 %ack, 0
  br %c, ok, fail
ok:
  ret i32 1
fail:
  ret i32 0
}

fn @delay_ms(%ms: i32) -> void {
entry:
  %n = mul i32 %ms, 6000
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %n
  br %c, loop, out
out:
  ret void
}

fn @wdt_kick() -> void {
entry:
  %kr = inttoptr i32 0x40003000
  store volatile i32 0xAAAA, %kr
  ret void
}

fn @gpio_toggle(%pin: i32) -> void {
entry:
  %odr = inttoptr i32 0x48000114
  %cur = load volatile i32, %odr
  %bit = shl i32 1, %pin
  %new = xor i32 %cur, %bit
  store volatile i32 %new, %odr
  ret void
}

fn @checksum_block(%seed: i32, %words: i32) -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %acc = phi i32 [ %seed, entry ], [ %acc2, loop ]
  %rot = lshr i32 %acc, 27
  %sh = shl i32 %acc, 5
  %mix = or i32 %sh, %rot
  %acc2 = xor i32 %mix, %i
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, %words
  br %c, loop, out
out:
  ret i32 %acc2
}

fn @check_tick(%t: i32) -> i32 {
entry:
  %c = icmp eq i32 %t, 0
  br %c, zero, nonzero
zero:
  ret i32 1
nonzero:
  ret i32 0
}

fn @report(%v: i32) -> void {
entry:
  %p = globaladdr @uart_out
  store volatile i32 %v, %p
  ret void
}

fn @main() -> i32 {
entry:
  call void @hal_init()
  %p = globaladdr @tick
  %v = load i32, %p
  %v2 = add i32 %v, 1
  store i32 %v2, %p
  %crc = call i32 @crc_mix(%v2)
  %r = call i32 @check_tick(%v2)
  %c = icmp eq i32 %r, 1
  br %c, impossible, done
impossible:
  call void @report(0xC0DE)
  br done
done:
  call void @report(%crc)
  ret i32 0xB007
}
",
    );
    must_parse(&src)
}

/// All Table VI targets by name.
pub fn table6_targets() -> Vec<(&'static str, Module)> {
    vec![("while(!a)", while_not_a()), ("if(a==SUCCESS)", if_a_eq_success())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_ir::verify_module;

    #[test]
    fn all_firmware_verifies() {
        for m in [while_not_a(), if_a_eq_success(), boot()] {
            verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{m}"));
        }
    }

    #[test]
    fn boot_reaches_the_marker_in_the_interpreter() {
        let m = boot();
        let mut interp = gd_ir::Interpreter::new(&m);
        let r = interp.run("main", &[], &mut |_, _| gd_ir::RtVal::Int(0)).unwrap();
        assert_eq!(r, gd_ir::RtVal::Int(i64::from(BOOT_MARKER)));
        assert_eq!(interp.global("tick"), 1);
        assert_ne!(interp.global("uart_out"), 0xC0DE, "impossible path untaken");
    }

    #[test]
    fn guards_never_succeed_unglitched() {
        // while(!a) spins forever.
        let m = while_not_a();
        let mut interp = gd_ir::Interpreter::new(&m);
        interp.fuel = 50_000;
        let err = interp.run("main", &[], &mut |_, _| gd_ir::RtVal::Int(0)).unwrap_err();
        assert_eq!(err, gd_ir::InterpError::OutOfFuel);

        // if(a==SUCCESS) parks in the lose path.
        let m = if_a_eq_success();
        let mut interp = gd_ir::Interpreter::new(&m);
        interp.fuel = 50_000;
        let err = interp.run("main", &[], &mut |_, _| gd_ir::RtVal::Int(0)).unwrap_err();
        assert_eq!(err, gd_ir::InterpError::OutOfFuel);
    }

    #[test]
    fn hardened_firmware_still_verifies() {
        use glitch_resistor::{harden, Config, Defenses};
        for (name, mut m) in
            [("guard", while_not_a()), ("enum", if_a_eq_success()), ("boot", boot())]
        {
            harden(&mut m, &Config::new(Defenses::ALL));
            verify_module(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
