//! Instruction encoding: [`Instr`] → machine-code bits.

use core::fmt;

use crate::instr::{WideDpOp, Width};
use crate::{Instr, Reg};

/// The machine-code form of one instruction: a single halfword, or the
/// halfword pair of a 32-bit `BL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// A 16-bit instruction.
    Half(u16),
    /// A 32-bit instruction as (first, second) halfwords in stream order.
    Pair(u16, u16),
}

impl Encoding {
    /// The first (or only) halfword.
    pub const fn halfword(self) -> u16 {
        match self {
            Encoding::Half(h) => h,
            Encoding::Pair(h, _) => h,
        }
    }

    /// Size in bytes (2 or 4).
    pub const fn size(self) -> u32 {
        match self {
            Encoding::Half(_) => 2,
            Encoding::Pair(_, _) => 4,
        }
    }

    /// Appends the little-endian bytes of this encoding to `out`.
    pub fn write_to(self, out: &mut Vec<u8>) {
        match self {
            Encoding::Half(h) => out.extend_from_slice(&h.to_le_bytes()),
            Encoding::Pair(a, b) => {
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
    }

    /// The little-endian bytes of this encoding.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4);
        self.write_to(&mut out);
        out
    }
}

/// Error returned when an [`Instr`] holds a field outside its encodable range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    instr: Instr,
    reason: &'static str,
}

impl EncodeError {
    /// The offending instruction.
    pub fn instr(&self) -> &Instr {
        &self.instr
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode {:?}: {}", self.instr, self.reason)
    }
}

impl std::error::Error for EncodeError {}

fn low(r: Reg) -> Result<u16, &'static str> {
    if r.is_low() {
        Ok(u16::from(r.index()))
    } else {
        Err("register must be r0-r7")
    }
}

fn imm_max(v: u8, max: u8) -> Result<u16, &'static str> {
    if v <= max {
        Ok(u16::from(v))
    } else {
        Err("immediate out of range")
    }
}

fn branch_imm(offset: i32, bits: u32) -> Result<u16, &'static str> {
    if offset % 2 != 0 {
        return Err("branch offset must be even");
    }
    let half = offset / 2;
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    if half < min || half > max {
        return Err("branch offset out of range");
    }
    Ok((half as u16) & ((1u16 << bits) - 1))
}

impl Instr {
    /// Encodes the instruction, validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a register field needs a low register but
    /// holds a high one, an immediate exceeds its bit-width, or a branch
    /// offset is odd or out of range.
    pub fn try_encode(self) -> Result<Encoding, EncodeError> {
        let fail = |reason| EncodeError { instr: self, reason };
        let half = self.encode_inner().map_err(fail)?;
        Ok(half)
    }

    /// Encodes the instruction.
    ///
    /// # Panics
    ///
    /// Panics when a field is out of range; see [`Instr::try_encode`] for a
    /// fallible variant.
    pub fn encode(self) -> Encoding {
        match self.try_encode() {
            Ok(e) => e,
            Err(e) => panic!("{e}"),
        }
    }

    fn encode_inner(self) -> Result<Encoding, &'static str> {
        use Encoding::Half;
        let enc = match self {
            Instr::ShiftImm { op, rd, rm, imm5 } => {
                let op = op as u16;
                Half(op << 11 | imm_max(imm5, 31)? << 6 | low(rm)? << 3 | low(rd)?)
            }
            Instr::AddReg3 { rd, rn, rm } => {
                Half(0b0001100 << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rd)?)
            }
            Instr::SubReg3 { rd, rn, rm } => {
                Half(0b0001101 << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rd)?)
            }
            Instr::AddImm3 { rd, rn, imm3 } => {
                Half(0b0001110 << 9 | imm_max(imm3, 7)? << 6 | low(rn)? << 3 | low(rd)?)
            }
            Instr::SubImm3 { rd, rn, imm3 } => {
                Half(0b0001111 << 9 | imm_max(imm3, 7)? << 6 | low(rn)? << 3 | low(rd)?)
            }
            Instr::MovImm { rd, imm8 } => Half(0b00100 << 11 | low(rd)? << 8 | u16::from(imm8)),
            Instr::CmpImm { rn, imm8 } => Half(0b00101 << 11 | low(rn)? << 8 | u16::from(imm8)),
            Instr::AddImm8 { rdn, imm8 } => Half(0b00110 << 11 | low(rdn)? << 8 | u16::from(imm8)),
            Instr::SubImm8 { rdn, imm8 } => Half(0b00111 << 11 | low(rdn)? << 8 | u16::from(imm8)),
            Instr::Alu { op, rdn, rm } => {
                Half(0b010000 << 10 | u16::from(op.bits()) << 6 | low(rm)? << 3 | low(rdn)?)
            }
            Instr::AddHi { rdn, rm } => Half(hi_reg(0b00, rdn, rm)),
            Instr::CmpHi { rn, rm } => Half(hi_reg(0b01, rn, rm)),
            Instr::MovHi { rd, rm } => Half(hi_reg(0b10, rd, rm)),
            Instr::Bx { rm } => Half(0b010001110 << 7 | u16::from(rm.index()) << 3),
            Instr::Blx { rm } => Half(0b010001111 << 7 | u16::from(rm.index()) << 3),
            Instr::LdrLit { rt, imm8 } => Half(0b01001 << 11 | low(rt)? << 8 | u16::from(imm8)),
            Instr::StoreReg { width, rt, rn, rm } => {
                let op = match width {
                    Width::Word => 0b000,
                    Width::Half => 0b001,
                    Width::Byte => 0b010,
                };
                Half(0b0101 << 12 | op << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rt)?)
            }
            Instr::LdrsbReg { rt, rn, rm } => {
                Half(0b0101 << 12 | 0b011 << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rt)?)
            }
            Instr::LoadReg { width, rt, rn, rm } => {
                let op = match width {
                    Width::Word => 0b100,
                    Width::Half => 0b101,
                    Width::Byte => 0b110,
                };
                Half(0b0101 << 12 | op << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rt)?)
            }
            Instr::LdrshReg { rt, rn, rm } => {
                Half(0b0101 << 12 | 0b111 << 9 | low(rm)? << 6 | low(rn)? << 3 | low(rt)?)
            }
            Instr::StoreImm { width, rt, rn, imm5 } => {
                let imm = imm_max(imm5, 31)?;
                match width {
                    Width::Word => Half(0b01100 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                    Width::Byte => Half(0b01110 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                    Width::Half => Half(0b10000 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                }
            }
            Instr::LoadImm { width, rt, rn, imm5 } => {
                let imm = imm_max(imm5, 31)?;
                match width {
                    Width::Word => Half(0b01101 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                    Width::Byte => Half(0b01111 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                    Width::Half => Half(0b10001 << 11 | imm << 6 | low(rn)? << 3 | low(rt)?),
                }
            }
            Instr::StrSp { rt, imm8 } => Half(0b10010 << 11 | low(rt)? << 8 | u16::from(imm8)),
            Instr::LdrSp { rt, imm8 } => Half(0b10011 << 11 | low(rt)? << 8 | u16::from(imm8)),
            Instr::Adr { rd, imm8 } => Half(0b10100 << 11 | low(rd)? << 8 | u16::from(imm8)),
            Instr::AddSpImm { rd, imm8 } => Half(0b10101 << 11 | low(rd)? << 8 | u16::from(imm8)),
            Instr::AddSp { imm7 } => Half(0b101100000 << 7 | imm_max(imm7, 127)?),
            Instr::SubSp { imm7 } => Half(0b101100001 << 7 | imm_max(imm7, 127)?),
            Instr::Sxth { rd, rm } => Half(0b1011001000 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Sxtb { rd, rm } => Half(0b1011001001 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Uxth { rd, rm } => Half(0b1011001010 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Uxtb { rd, rm } => Half(0b1011001011 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Rev { rd, rm } => Half(0b1011101000 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Rev16 { rd, rm } => Half(0b1011101001 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Revsh { rd, rm } => Half(0b1011101011 << 6 | low(rm)? << 3 | low(rd)?),
            Instr::Push { rlist, lr } => {
                if rlist == 0 && !lr {
                    return Err("push with empty register list");
                }
                Half(0b1011010 << 9 | u16::from(lr) << 8 | u16::from(rlist))
            }
            Instr::Pop { rlist, pc } => {
                if rlist == 0 && !pc {
                    return Err("pop with empty register list");
                }
                Half(0b1011110 << 9 | u16::from(pc) << 8 | u16::from(rlist))
            }
            Instr::Bkpt { imm8 } => Half(0b10111110 << 8 | u16::from(imm8)),
            Instr::Hint { hint } => Half(0b10111111 << 8 | u16::from(hint as u8) << 4),
            Instr::Cps { disable } => Half(if disable { 0xB672 } else { 0xB662 }),
            Instr::Stm { rn, rlist } => {
                if rlist == 0 {
                    return Err("stm with empty register list");
                }
                Half(0b11000 << 11 | low(rn)? << 8 | u16::from(rlist))
            }
            Instr::Ldm { rn, rlist } => {
                if rlist == 0 {
                    return Err("ldm with empty register list");
                }
                Half(0b11001 << 11 | low(rn)? << 8 | u16::from(rlist))
            }
            Instr::BCond { cond, offset } => {
                Half(0b1101 << 12 | u16::from(cond.bits()) << 8 | branch_imm(offset, 8)?)
            }
            Instr::Udf { imm8 } => Half(0b11011110 << 8 | u16::from(imm8)),
            Instr::Svc { imm8 } => Half(0b11011111 << 8 | u16::from(imm8)),
            Instr::B { offset } => Half(0b11100 << 11 | branch_imm(offset, 11)?),
            Instr::Bl { offset } => {
                if offset % 2 != 0 {
                    return Err("branch offset must be even");
                }
                let half = offset / 2;
                if !(-(1 << 23)..(1 << 23)).contains(&half) {
                    return Err("branch offset out of range");
                }
                let half = half as u32;
                let s = (half >> 23) & 1;
                let i1 = (half >> 22) & 1;
                let i2 = (half >> 21) & 1;
                let imm10 = (half >> 11) & 0x3FF;
                let imm11 = half & 0x7FF;
                let j1 = (i1 ^ 1) ^ s;
                let j2 = (i2 ^ 1) ^ s;
                let hw1 = 0b11110 << 11 | (s as u16) << 10 | imm10 as u16;
                let hw2 =
                    0b11 << 14 | (j1 as u16) << 13 | 1 << 12 | (j2 as u16) << 11 | imm11 as u16;
                Encoding::Pair(hw1, hw2)
            }
            Instr::BW { offset } => {
                if offset % 2 != 0 {
                    return Err("branch offset must be even");
                }
                let half = offset / 2;
                if !(-(1 << 23)..(1 << 23)).contains(&half) {
                    return Err("branch offset out of range");
                }
                let half = half as u32;
                let s = (half >> 23) & 1;
                let j1 = (((half >> 22) & 1) ^ 1) ^ s;
                let j2 = (((half >> 21) & 1) ^ 1) ^ s;
                let imm10 = (half >> 11) & 0x3FF;
                let imm11 = half & 0x7FF;
                let hw1 = 0b11110 << 11 | (s as u16) << 10 | imm10 as u16;
                let hw2 = 1 << 15 | (j1 as u16) << 13 | 1 << 12 | (j2 as u16) << 11 | imm11 as u16;
                Encoding::Pair(hw1, hw2)
            }
            Instr::BCondW { cond, offset } => {
                if offset % 2 != 0 {
                    return Err("branch offset must be even");
                }
                let half = offset / 2;
                if !(-(1 << 19)..(1 << 19)).contains(&half) {
                    return Err("branch offset out of range");
                }
                let half = half as u32;
                let s = (half >> 19) & 1;
                let j2 = (half >> 18) & 1;
                let j1 = (half >> 17) & 1;
                let imm6 = (half >> 11) & 0x3F;
                let imm11 = half & 0x7FF;
                let hw1 =
                    0b11110 << 11 | (s as u16) << 10 | u16::from(cond.bits()) << 6 | imm6 as u16;
                let hw2 = 1 << 15 | (j1 as u16) << 13 | (j2 as u16) << 11 | imm11 as u16;
                Encoding::Pair(hw1, hw2)
            }
            Instr::DpImm { op, s, rn, rd, imm12 } => {
                if imm12 > 0xFFF {
                    return Err("immediate out of range");
                }
                if (imm12 >> 8) & 0xF != 0 && imm12 >> 10 == 0 && imm12 & 0xFF == 0 {
                    return Err("unpredictable immediate pattern");
                }
                if rd == Reg::SP || rn == Reg::SP {
                    return Err("sp is not encodable in wide data processing");
                }
                if rd == Reg::PC && !(s && op.has_discard_form()) {
                    return Err("pc destination needs a flag-setting compare/test form");
                }
                if rn == Reg::PC && !matches!(op, WideDpOp::Orr | WideDpOp::Orn) {
                    return Err("pc operand needs the mov/mvn form");
                }
                let hw1 = 0b11110 << 11
                    | (imm12 >> 11) << 10
                    | u16::from(op.bits()) << 5
                    | u16::from(s) << 4
                    | u16::from(rn.index());
                let hw2 = ((imm12 >> 8) & 7) << 12 | u16::from(rd.index()) << 8 | imm12 & 0xFF;
                Encoding::Pair(hw1, hw2)
            }
            Instr::MovW { rd, imm16 } => {
                let (hw1, hw2) = wide_mov(0b00100, rd, imm16)?;
                Encoding::Pair(hw1, hw2)
            }
            Instr::MovT { rd, imm16 } => {
                let (hw1, hw2) = wide_mov(0b01100, rd, imm16)?;
                Encoding::Pair(hw1, hw2)
            }
            Instr::LdrW { rt, rn, imm12 } => {
                if imm12 > 0xFFF {
                    return Err("immediate out of range");
                }
                if rt == Reg::SP {
                    return Err("sp destination is not encodable");
                }
                Encoding::Pair(0xF8D0 | u16::from(rn.index()), u16::from(rt.index()) << 12 | imm12)
            }
            Instr::StrW { rt, rn, imm12 } => {
                if imm12 > 0xFFF {
                    return Err("immediate out of range");
                }
                if rt == Reg::SP || rt == Reg::PC || rn == Reg::PC {
                    return Err("sp/pc field is not encodable in a wide store");
                }
                Encoding::Pair(0xF8C0 | u16::from(rn.index()), u16::from(rt.index()) << 12 | imm12)
            }
        };
        Ok(enc)
    }
}

fn wide_mov(op5: u16, rd: Reg, imm16: u16) -> Result<(u16, u16), &'static str> {
    if rd == Reg::SP || rd == Reg::PC {
        return Err("sp/pc destination is not encodable");
    }
    let hw1 = 0b11110 << 11 | (imm16 >> 11 & 1) << 10 | 1 << 9 | op5 << 4 | (imm16 >> 12);
    let hw2 = ((imm16 >> 8) & 7) << 12 | u16::from(rd.index()) << 8 | imm16 & 0xFF;
    Ok((hw1, hw2))
}

fn hi_reg(op: u16, rdn: Reg, rm: Reg) -> u16 {
    let d = u16::from(rdn.index());
    let m = u16::from(rm.index());
    0b010001 << 10 | op << 8 | (d >> 3) << 7 | m << 3 | (d & 0b111)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, ShiftOp};

    #[test]
    fn reference_encodings() {
        // Encodings cross-checked against the ARMv6-M ARM.
        let cases: Vec<(Instr, u16)> = vec![
            (Instr::MovImm { rd: Reg::R0, imm8: 0xAA }, 0x20AA),
            (Instr::AddImm8 { rdn: Reg::R3, imm8: 7 }, 0x3307),
            (Instr::CmpImm { rn: Reg::R3, imm8: 0 }, 0x2B00),
            (Instr::SubImm8 { rdn: Reg::R1, imm8: 1 }, 0x3901),
            (Instr::ShiftImm { op: ShiftOp::Lsl, rd: Reg::R0, rm: Reg::R0, imm5: 0 }, 0x0000),
            (Instr::LoadImm { width: Width::Byte, rt: Reg::R3, rn: Reg::R3, imm5: 0 }, 0x781B),
            (Instr::LoadImm { width: Width::Word, rt: Reg::R2, rn: Reg::R1, imm5: 4 }, 0x690A),
            (Instr::MovHi { rd: Reg::R3, rm: Reg::SP }, 0x466B),
            (Instr::Bx { rm: Reg::LR }, 0x4770),
            (Instr::BCond { cond: Cond::Eq, offset: 6 }, 0xD003),
            (Instr::BCond { cond: Cond::Ne, offset: -8 }, 0xD1FC),
            (Instr::B { offset: -4 }, 0xE7FE),
            (Instr::Push { rlist: 0b1001_0000, lr: true }, 0xB590),
            (Instr::Pop { rlist: 0b1001_0000, pc: true }, 0xBD90),
            (Instr::NOP, 0xBF00),
            (Instr::Bkpt { imm8: 0xAB }, 0xBEAB),
            (Instr::Svc { imm8: 1 }, 0xDF01),
            (Instr::LdrSp { rt: Reg::R0, imm8: 2 }, 0x9802),
            (Instr::StrSp { rt: Reg::R0, imm8: 2 }, 0x9002),
            (Instr::AddSp { imm7: 2 }, 0xB002),
            (Instr::SubSp { imm7: 2 }, 0xB082),
            (Instr::Alu { op: AluOp::Cmp, rdn: Reg::R2, rm: Reg::R3 }, 0x429A),
            (Instr::Alu { op: AluOp::Mvn, rdn: Reg::R0, rm: Reg::R1 }, 0x43C8),
            (Instr::LdrLit { rt: Reg::R3, imm8: 1 }, 0x4B01),
            (Instr::Uxtb { rd: Reg::R1, rm: Reg::R2 }, 0xB2D1),
            (Instr::Stm { rn: Reg::R0, rlist: 0b110 }, 0xC006),
            (Instr::Ldm { rn: Reg::R0, rlist: 0b110 }, 0xC806),
            (Instr::Udf { imm8: 0 }, 0xDE00),
            (Instr::Cps { disable: true }, 0xB672),
        ];
        for (instr, expected) in cases {
            assert_eq!(
                instr.encode(),
                Encoding::Half(expected),
                "{instr:?} should encode to {expected:#06x}"
            );
        }
    }

    #[test]
    fn bl_reference_encoding() {
        // BL with offset 0 → F000 F800 (classic "bl .+4").
        assert_eq!(Instr::Bl { offset: 0 }.encode(), Encoding::Pair(0xF000, 0xF800));
        // Negative offset exercises the S/J1/J2 inversion.
        assert_eq!(Instr::Bl { offset: -4 }.encode(), Encoding::Pair(0xF7FF, 0xFFFE));
    }

    #[test]
    fn rejects_out_of_range_fields() {
        assert!(Instr::AddImm3 { rd: Reg::R0, rn: Reg::R0, imm3: 8 }.try_encode().is_err());
        assert!(Instr::ShiftImm { op: ShiftOp::Lsl, rd: Reg::R0, rm: Reg::R0, imm5: 32 }
            .try_encode()
            .is_err());
        assert!(Instr::AddSp { imm7: 128 }.try_encode().is_err());
        assert!(Instr::MovImm { rd: Reg::R8, imm8: 0 }.try_encode().is_err());
        assert!(Instr::BCond { cond: Cond::Eq, offset: 3 }.try_encode().is_err());
        assert!(Instr::BCond { cond: Cond::Eq, offset: 256 }.try_encode().is_err());
        assert!(Instr::BCond { cond: Cond::Eq, offset: -258 }.try_encode().is_err());
        assert!(Instr::B { offset: 2048 }.try_encode().is_err());
        assert!(Instr::Bl { offset: 1 << 25 }.try_encode().is_err());
        assert!(Instr::Push { rlist: 0, lr: false }.try_encode().is_err());
        assert!(Instr::Stm { rn: Reg::R0, rlist: 0 }.try_encode().is_err());
    }

    #[test]
    fn encoding_bytes_are_little_endian() {
        let enc = Instr::MovImm { rd: Reg::R0, imm8: 0xAA }.encode();
        assert_eq!(enc.to_bytes(), vec![0xAA, 0x20]);
        let bl = Instr::Bl { offset: 0 }.encode();
        assert_eq!(bl.to_bytes(), vec![0x00, 0xF0, 0x00, 0xF8]);
        assert_eq!(bl.size(), 4);
    }
}
