//! The GlitchResistor runtime, generated as ordinary IR so that it is (a)
//! compiled by the same backend as user code and (b) itself instrumented by
//! the other defenses — exactly as the paper notes for the seed
//! initialization code.
//!
//! Pieces:
//!
//! - `gr_detected()` — sets a volatile flag and parks the core in an
//!   infinite loop. The *reaction* is application-specific (§VI-B-c);
//!   firmware can override by defining its own `gr_detected` before
//!   hardening.
//! - `gr_delay()` — a glibc-parameter LCG (`s = s*1103515245 + 12345
//!   mod 2³¹`) driving 0..`max_delay_nops` busy iterations.
//! - `gr_seed_init()` — increments the non-volatile seed and writes it
//!   back, making every boot's delay sequence different. The write to
//!   `__gr_nv_seed` lands in the (slow) flash/NVM region, which is where
//!   the Delay row's large constant overhead in Table IV comes from.

use gd_ir::{Builder, Function, Global, Module, Pred, Ty};

use crate::config::Config;
use crate::pass::{DELAY_FN, DETECT_FN, SEED_INIT_FN};

/// Name of the volatile flag set on detection (watched by the harness).
pub const DETECT_FLAG: &str = "__gr_detect_flag";
/// Name of the RAM copy of the delay PRNG state.
pub const SEED_RAM: &str = "__gr_seed";
/// Name of the "seed initialized" latch.
pub const SEED_READY: &str = "__gr_seed_ready";
/// Name of the non-volatile seed (placed in the NVM region by the backend).
pub const SEED_NV: &str = "__gr_nv_seed";

/// The glibc LCG multiplier.
pub const LCG_A: i64 = 1_103_515_245;
/// The glibc LCG increment.
pub const LCG_C: i64 = 12_345;
/// The glibc LCG modulus mask (2³¹ − 1).
pub const LCG_MASK: i64 = 0x7FFF_FFFF;

/// Adds the runtime globals and functions the selected defenses need
/// (idempotent). Existing user definitions of `gr_detected` are respected.
/// Constant diversification alone needs no runtime at all, which is why
/// the paper's Returns row is nearly free.
pub fn add_runtime(module: &mut Module, config: &Config) {
    let d = config.defenses;
    let needs_detect = d.branches || d.loops || d.integrity;
    let needs_delay = d.delay;
    if needs_detect || needs_delay {
        let flag = (DETECT_FLAG, 0);
        if module.global(flag.0).is_none() {
            module.add_global(Global {
                name: flag.0.to_owned(),
                ty: Ty::I32,
                init: flag.1,
                sensitive: false,
            });
        }
        if module.func(DETECT_FN).is_none() {
            module.funcs.push(build_detected());
        }
    }
    if needs_delay {
        for (name, init) in [(SEED_RAM, 1), (SEED_READY, 0), (SEED_NV, 0)] {
            if module.global(name).is_none() {
                module.add_global(Global {
                    name: name.to_owned(),
                    ty: Ty::I32,
                    init,
                    sensitive: false,
                });
            }
        }
        if module.func(SEED_INIT_FN).is_none() {
            module.funcs.push(build_seed_init());
        }
        if module.func(DELAY_FN).is_none() {
            module.funcs.push(build_delay(config.max_delay_nops.max(1)));
        }
    }
}

fn build_detected() -> Function {
    let mut f = Function::new(DETECT_FN, vec![], Ty::Void);
    let entry = f.add_block("entry");
    let spin = f.add_block("spin");
    let mut b = Builder::new(&mut f, entry);
    let flag = b.global_addr(DETECT_FLAG);
    let one = b.const_i32(1);
    b.store_volatile(flag, one);
    b.br(spin);
    b.switch_to(spin);
    b.br(spin);
    f
}

fn build_seed_init() -> Function {
    let mut f = Function::new(SEED_INIT_FN, vec![], Ty::Void);
    let entry = f.add_block("entry");
    let mut b = Builder::new(&mut f, entry);
    // seed = nv_seed + 1; nv_seed = seed (slow flash write); ready = 1.
    let nv = b.global_addr(SEED_NV);
    let old = b.load_volatile(nv, Ty::I32);
    let one = b.const_i32(1);
    let new = b.add(old, one);
    b.store_volatile(nv, new);
    let ram = b.global_addr(SEED_RAM);
    b.store_volatile(ram, new);
    let ready = b.global_addr(SEED_READY);
    let flag = b.const_i32(1);
    b.store_volatile(ready, flag);
    b.ret(None);
    f
}

fn build_delay(max_nops: u32) -> Function {
    let mut f = Function::new(DELAY_FN, vec![], Ty::Void);
    let entry = f.add_block("entry");
    let init = f.add_block("init");
    let step = f.add_block("step");
    let header = f.add_block("header");
    let body = f.add_block("body");
    let exit = f.add_block("exit");

    let mut b = Builder::new(&mut f, entry);
    // Lazy seed init: the first invocation pays the flash write.
    let ready_p = b.global_addr(SEED_READY);
    let ready = b.load_volatile(ready_p, Ty::I32);
    let zero = b.const_i32(0);
    let is_cold = b.icmp(Pred::Eq, ready, zero);
    b.cond_br(is_cold, init, step);

    b.switch_to(init);
    b.call(SEED_INIT_FN, vec![], Ty::Void);
    b.br(step);

    // s = (s * A + C) & 0x7FFFFFFF; n = s % max_nops.
    b.switch_to(step);
    let seed_p = b.global_addr(SEED_RAM);
    let s = b.load_volatile(seed_p, Ty::I32);
    let a = b.const_i32(LCG_A);
    let mul = b.bin(gd_ir::BinOp::Mul, s, a);
    let c = b.const_i32(LCG_C);
    let sum = b.add(mul, c);
    let mask = b.const_i32(LCG_MASK);
    let next = b.bin(gd_ir::BinOp::And, sum, mask);
    b.store_volatile(seed_p, next);
    // Mask instead of modulo: the M0 has no divider, and a library divide
    // inside every delay (plus its replicated copy under branch
    // duplication) would dwarf the delay itself. The mask keeps the count
    // in 0..2^k, nearest to the requested bound.
    let mask_bits = (max_nops + 1).next_power_of_two() / 2;
    let m = b.const_i32(i64::from(mask_bits.max(1) - 1));
    let n = b.bin(gd_ir::BinOp::And, next, m);
    b.br(header);

    // Busy loop of n iterations.
    b.switch_to(header);
    let i = b.phi(Ty::I32, vec![]);
    let cond = b.icmp(Pred::Ult, i, n);
    b.cond_br(cond, body, exit);

    b.switch_to(body);
    let one = b.const_i32(1);
    let i2 = b.add(i, one);
    b.br(header);

    b.switch_to(exit);
    b.ret(None);

    // Wire the phi now that both incoming values exist.
    let zero2 = f.const_int(Ty::I32, 0);
    if let gd_ir::ValueDef::Instr(gd_ir::Instr::Phi { incomings }) = f.value_mut(i) {
        incomings.push((step, zero2));
        incomings.push((body, i2));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses};
    use gd_ir::{verify_module, Interpreter, RtVal};

    fn module_with_runtime() -> Module {
        let mut m = Module::new("rt");
        add_runtime(&mut m, &Config::new(Defenses::ALL));
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{m}"));
        m
    }

    #[test]
    fn runtime_verifies_and_is_idempotent() {
        let mut m = module_with_runtime();
        let funcs = m.funcs.len();
        let globals = m.globals.len();
        add_runtime(&mut m, &Config::new(Defenses::ALL));
        assert_eq!(m.funcs.len(), funcs);
        assert_eq!(m.globals.len(), globals);
    }

    #[test]
    fn seed_init_increments_nv_seed() {
        let m = module_with_runtime();
        let mut interp = Interpreter::new(&m);
        interp.run(SEED_INIT_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_eq!(interp.global(SEED_NV), 1);
        assert_eq!(interp.global(SEED_RAM), 1);
        assert_eq!(interp.global(SEED_READY), 1);
        interp.run(SEED_INIT_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_eq!(interp.global(SEED_NV), 2, "each boot advances the seed");
    }

    #[test]
    fn delay_advances_the_lcg() {
        let m = module_with_runtime();
        let mut interp = Interpreter::new(&m);
        interp.run(DELAY_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
        // Cold call initializes the seed to 1, then steps the LCG once.
        let expected = (LCG_A + LCG_C) & LCG_MASK;
        assert_eq!(interp.global(SEED_RAM), expected);
        assert_eq!(interp.global(SEED_READY), 1);
        interp.run(DELAY_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
        let expected2 = (expected * LCG_A + LCG_C) & LCG_MASK;
        assert_eq!(interp.global(SEED_RAM), expected2);
        assert_eq!(interp.global(SEED_NV), 1, "warm calls skip the flash write");
    }

    #[test]
    fn delay_sequence_differs_across_boots() {
        // Two boots (seed-init) produce different first delays.
        let m = module_with_runtime();
        let lengths: Vec<i64> = (0..2)
            .map(|_| {
                let mut interp = Interpreter::new(&m);
                interp.run(DELAY_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
                interp.global(SEED_RAM)
            })
            .collect();
        // Same cold seed here (fresh interp each time); with persisted NVM
        // the seeds differ — modelled in the pipeline harness. Locally we
        // at least pin the LCG trajectory.
        assert_eq!(lengths[0], lengths[1]);
        let mut interp = Interpreter::new(&m);
        interp.set_global(SEED_NV, 7);
        interp.run(DELAY_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_ne!(interp.global(SEED_RAM), lengths[0], "different NV seed, different run");
    }

    #[test]
    fn detected_sets_flag_and_parks() {
        let m = module_with_runtime();
        let mut interp = Interpreter::new(&m);
        interp.fuel = 1_000;
        let err = interp.run(DETECT_FN, &[], &mut |_, _| RtVal::Int(0)).unwrap_err();
        assert_eq!(err, gd_ir::InterpError::OutOfFuel, "parks forever");
        assert_eq!(interp.global(DETECT_FLAG), 1, "flag raised before parking");
    }
}
