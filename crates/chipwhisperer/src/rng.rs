//! Deterministic hashing/PRNG plumbing: the fault "landscape" must be a
//! pure function of (seed, glitch parameters, cycle) so every experiment is
//! bit-reproducible, like re-running the same ChipWhisperer script.

/// SplitMix64: a tiny, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a sequence of words into one 64-bit value.
pub fn hash_words(words: &[u64]) -> u64 {
    let mut acc = 0x5151_5151_DEAD_BEEFu64;
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// A small deterministic generator seeded from a hash.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds from any 64-bit value.
    pub fn new(seed: u64) -> Rng {
        Rng { state: splitmix64(seed) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// A 16-bit AND mask where each bit is *cleared* independently with
    /// probability `p` (unidirectional 1→0 flips).
    pub fn and_mask16(&mut self, p: f64) -> u16 {
        let mut mask = 0xFFFFu16;
        for bit in 0..16 {
            if self.next_f64() < p {
                mask &= !(1 << bit);
            }
        }
        mask
    }

    /// A 32-bit AND mask with per-bit clear probability `p`.
    pub fn and_mask32(&mut self, p: f64) -> u32 {
        let mut mask = u32::MAX;
        for bit in 0..32 {
            if self.next_f64() < p {
                mask &= !(1 << bit);
            }
        }
        mask
    }

    /// Picks an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn and_mask_statistics() {
        let mut r = Rng::new(9);
        let mut cleared = 0u32;
        for _ in 0..1000 {
            cleared += r.and_mask16(0.25).count_zeros();
        }
        let avg = f64::from(cleared) / 1000.0;
        assert!((3.0..5.0).contains(&avg), "≈4 of 16 bits cleared, got {avg}");
        assert_eq!(r.and_mask16(0.0), 0xFFFF);
        assert_eq!(r.and_mask16(1.0), 0x0000);
    }

    #[test]
    fn hash_words_varies() {
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 4]));
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_eq!(hash_words(&[5, 6]), hash_words(&[5, 6]));
    }

    #[test]
    fn bounded_draws() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            assert!(r.next_below(7) < 7);
        }
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }
}
