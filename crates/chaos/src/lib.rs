//! # gd-chaos — deterministic fault injection for the campaign stack
//!
//! The paper's whole premise is that systems must survive injected
//! faults; this crate lets the workspace aim that premise at *itself*.
//! ARMORY argues that fault-tolerance claims are only testable under
//! exhaustive, deterministic fault simulation, and InjectV models the
//! injection at the simulation-environment layer rather than inside the
//! target. gd-chaos follows both: a seeded schedule of failures is
//! injected at **named sites** inside the executor, the campaign
//! engine's storage paths, and the HTTP service — never inside the
//! emulated workloads, so a surviving campaign's output must stay
//! byte-identical to a fault-free run.
//!
//! ## Schedules
//!
//! A schedule is `<seed>:<site>=<rate>,...` — for example
//!
//! ```text
//! GD_CHAOS=42:exec.worker_panic=0.1,store.torn_write=0.5
//! ```
//!
//! Each site draws from its own deterministic stream: the `n`-th
//! decision at a site is a pure function of `(seed, site, n)`, so a
//! serial run replays bit-for-bit and a parallel run is statistically
//! identical (the per-site decision *sequence* is fixed; which thread
//! consumes which decision races, which is exactly the nondeterminism
//! the self-healing engine has to survive). Rates are probabilities in
//! `[0, 1]`; unknown sites and malformed rates are rejected loudly — a
//! typo'd schedule must not silently run a fault-free "chaos" test.
//!
//! With `GD_CHAOS` unset the hot-path cost is one relaxed atomic load
//! and nothing is ever injected, so golden outputs stay byte-identical.
//!
//! ## Sites
//!
//! See [`sites`] for the catalog. Injection helpers ([`chunk_started`],
//! [`shard_attempt`], [`read_dropped`], [`corrupt`], [`tear`],
//! [`connection_dropped`], [`delay_read`]) are called by the host crates
//! at the matching points; every injection increments
//! `gd_chaos_injected_total{site=...}`.
//!
//! ## Tests
//!
//! `GD_CHAOS` is process-global, so tests use scoped overrides instead:
//! [`activate`] installs a plan (and resets the per-site decision
//! streams) until the returned guard drops, [`suppress`] forces chaos
//! off. Both serialize through one global lock — two chaos tests cannot
//! interleave and a test without a guard cannot observe another test's
//! faults from a parallel test thread *in the same binary* only if it
//! takes a guard too; keep chaos-driven tests and their fault-free
//! assertions in the same file and give every one a guard.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::Duration;

/// The injection-site catalog. Site names are `layer.failure`; the host
/// crate owning each layer calls the matching helper.
pub mod sites {
    /// A fan-out worker panics before executing its chunk
    /// (`gd_exec::par_map_chunks`). Surviving it requires the engine's
    /// fan-out retry loop.
    pub const EXEC_WORKER_PANIC: &str = "exec.worker_panic";
    /// A chunk stalls for [`super::SLOW_CHUNK_DELAY`] before executing —
    /// scheduling jitter that must not change output bytes.
    pub const EXEC_SLOW_CHUNK: &str = "exec.slow_chunk";
    /// A shard attempt panics inside the engine's quarantine
    /// (`run_shard`). Surviving it requires per-shard retry.
    pub const ENGINE_SHARD_PANIC: &str = "engine.shard_panic";
    /// A checkpoint/cache write is torn: only a truncated prefix reaches
    /// disk. Surviving it requires the integrity seal.
    pub const STORE_TORN_WRITE: &str = "store.torn_write";
    /// A checkpoint/cache read fails as if the file were unreadable.
    pub const STORE_READ_ERR: &str = "store.read_err";
    /// A checkpoint/cache read returns bytes with one bit flipped.
    pub const STORE_CORRUPT: &str = "store.corrupt";
    /// An accepted HTTP connection is dropped before the request is read.
    pub const HTTP_DROP_CONN: &str = "http.drop_conn";
    /// The service delays [`super::HTTP_READ_DELAY`] before reading a
    /// request.
    pub const HTTP_DELAY_READ: &str = "http.delay_read";
    /// The fleet dispatcher's connection to a worker drops before the
    /// shard payload is sent. Surviving it requires the fleet retry /
    /// quarantine / local-fallback ladder.
    pub const FLEET_CONN_DROP: &str = "fleet.conn_drop";
    /// A worker hangs for [`super::FLEET_HANG_DELAY`] before computing a
    /// leased shard — the straggler the dispatcher's hedging exists for.
    pub const FLEET_HANG: &str = "fleet.hang";
    /// A shard result returned by a worker arrives with one bit flipped.
    /// Surviving it requires the SHA-256 payload seal.
    pub const FLEET_CORRUPT_RESULT: &str = "fleet.corrupt_result";
    /// A worker crashes mid-shard: the connection closes without a
    /// response. Surviving it requires re-dispatch to another worker.
    pub const FLEET_WORKER_CRASH: &str = "fleet.worker_crash";

    /// Every site with a one-line description, in canonical order. The
    /// array index is the site's id throughout this crate.
    pub const CATALOG: [(&str, &str); 12] = [
        (EXEC_WORKER_PANIC, "fan-out worker panics before its chunk"),
        (EXEC_SLOW_CHUNK, "chunk sleeps before executing"),
        (ENGINE_SHARD_PANIC, "shard attempt panics inside the quarantine"),
        (STORE_TORN_WRITE, "checkpoint/cache write truncated mid-file"),
        (STORE_READ_ERR, "checkpoint/cache read fails outright"),
        (STORE_CORRUPT, "checkpoint/cache read returns a flipped bit"),
        (HTTP_DROP_CONN, "accepted connection dropped before the read"),
        (HTTP_DELAY_READ, "request read delayed"),
        (FLEET_CONN_DROP, "dispatcher-to-worker connection dropped before the send"),
        (FLEET_HANG, "worker stalls before computing a leased shard"),
        (FLEET_CORRUPT_RESULT, "worker shard result arrives with a flipped bit"),
        (FLEET_WORKER_CRASH, "worker dies mid-shard; connection closes unanswered"),
    ];

    /// Number of sites in [`CATALOG`].
    pub const COUNT: usize = CATALOG.len();
}

/// How long [`chunk_started`] stalls when `exec.slow_chunk` fires.
pub const SLOW_CHUNK_DELAY: Duration = Duration::from_millis(15);
/// How long the service stalls when `http.delay_read` fires.
pub const HTTP_READ_DELAY: Duration = Duration::from_millis(25);
/// How long a worker stalls before computing when `fleet.hang` fires —
/// long enough to trip any realistic hedge threshold, short enough that
/// a doubly-hung shard still lands inside the dispatch timeout.
pub const FLEET_HANG_DELAY: Duration = Duration::from_millis(400);

/// Every panic gd-chaos injects carries this prefix, so harnesses (and
/// the `gd-campaign chaos` soak) can tell injected faults from real bugs.
pub const PANIC_PREFIX: &str = "gd-chaos:";

/// A parsed fault schedule: a seed plus a per-site injection rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    seed: u64,
    rates: [f64; sites::COUNT],
}

impl Plan {
    /// A plan that injects nothing (all rates zero).
    pub fn off(seed: u64) -> Plan {
        Plan { seed, rates: [0.0; sites::COUNT] }
    }

    /// Parses `<seed>:<site>=<rate>,...`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token for a missing or
    /// non-integer seed, an empty site list, an unknown site (the
    /// message lists the catalog), a rate outside `[0, 1]`, or a site
    /// given twice.
    pub fn parse(text: &str) -> Result<Plan, String> {
        let (seed_text, rest) = text
            .split_once(':')
            .ok_or_else(|| format!("chaos schedule {text:?} lacks a `<seed>:` prefix"))?;
        let seed: u64 = seed_text
            .trim()
            .parse()
            .map_err(|_| format!("chaos seed {seed_text:?} is not an unsigned integer"))?;
        let mut plan = Plan::off(seed);
        let mut seen = [false; sites::COUNT];
        let mut any = false;
        for entry in rest.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, rate_text) = entry
                .split_once('=')
                .ok_or_else(|| format!("chaos entry {entry:?} is not `<site>=<rate>`"))?;
            let idx = site_index(site.trim()).ok_or_else(|| {
                let known: Vec<&str> = sites::CATALOG.iter().map(|(n, _)| *n).collect();
                format!("unknown chaos site {:?}; known sites: {}", site.trim(), known.join(", "))
            })?;
            if seen[idx] {
                return Err(format!("chaos site {:?} given twice", site.trim()));
            }
            seen[idx] = true;
            let rate: f64 = rate_text
                .trim()
                .parse()
                .map_err(|_| format!("chaos rate {rate_text:?} is not a number"))?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("chaos rate {rate_text:?} is outside [0, 1]"));
            }
            plan.rates[idx] = rate;
            any = true;
        }
        if !any {
            return Err(format!("chaos schedule {text:?} lists no sites"));
        }
        Ok(plan)
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same schedule under a different seed (the soak subcommand
    /// derives one seed per run from the schedule's base seed).
    pub fn with_seed(&self, seed: u64) -> Plan {
        Plan { seed, ..*self }
    }

    /// The injection rate configured for `site` (0 when absent).
    pub fn rate(&self, site: &str) -> f64 {
        site_index(site).map_or(0.0, |i| self.rates[i])
    }

    /// The first `count` decisions of `site`'s stream, without touching
    /// the live decision counters — lets tests pick seeds with a known
    /// opening (e.g. "first connection dropped, the rest fine").
    pub fn decisions(&self, site: &str, count: usize) -> Vec<bool> {
        let Some(idx) = site_index(site) else { return vec![false; count] };
        (0..count as u64).map(|n| draw_unit(self.seed, idx, n) < self.rates[idx]).collect()
    }

    /// The schedule in its parseable syntax (`seed:site=rate,...`).
    pub fn describe(&self) -> String {
        let mut out = format!("{}:", self.seed);
        let mut first = true;
        for (idx, (name, _)) in sites::CATALOG.iter().enumerate() {
            if self.rates[idx] > 0.0 {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("{name}={}", self.rates[idx]));
                first = false;
            }
        }
        out
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

fn site_index(site: &str) -> Option<usize> {
    sites::CATALOG.iter().position(|(name, _)| *name == site)
}

/// splitmix64's finalizer: a measurably uniform 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `n`-th decision of `site`'s stream under `seed`, as a uniform
/// draw in `[0, 1)` — a pure function, so schedules replay exactly.
fn draw_unit(seed: u64, site: usize, n: u64) -> f64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let salt = (site as u64 + 1).wrapping_mul(GOLDEN);
    let h = mix(mix(seed ^ salt) ^ n.wrapping_mul(GOLDEN).wrapping_add(1));
    ((h >> 11) as f64) / ((1u64 << 53) as f64)
}

/// `GD_CHAOS` (env) and test-override plans. The override is
/// process-global because injection sites run on spawned worker threads
/// that a thread-local override could never reach.
struct GlobalState {
    /// `Some(Some(plan))` = a test activated `plan`; `Some(None)` = a
    /// test suppressed chaos; `None` = follow the environment.
    overridden: Option<Option<Plan>>,
}

static STATE: Mutex<GlobalState> = Mutex::new(GlobalState { overridden: None });
/// Fast-path gate: false means "no plan can be active, skip everything".
static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
/// One decision counter per site (reset when a test activates a plan).
static SEQ: [AtomicU64; sites::COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; sites::COUNT]
};
/// Serializes tests that install overrides (and their fault-free
/// baselines). Held via [`Guard`].
static GUARD_LOCK: Mutex<()> = Mutex::new(());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The plan parsed from `GD_CHAOS`, once per process.
///
/// # Panics
///
/// Panics when `GD_CHAOS` is set but malformed — a typo'd schedule must
/// surface, not silently run without faults (the `GD_THREADS`
/// precedent).
fn env_plan() -> Option<Plan> {
    static PLAN: OnceLock<Option<Plan>> = OnceLock::new();
    *PLAN.get_or_init(|| match std::env::var("GD_CHAOS") {
        Ok(text) => match Plan::parse(&text) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("invalid GD_CHAOS: {e}"),
        },
        Err(_) => None,
    })
}

fn ensure_env_loaded() {
    ENV_INIT.call_once(|| {
        if env_plan().is_some() {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// The plan currently in force: a test override if one is installed,
/// else the `GD_CHAOS` plan, else none.
pub fn current_plan() -> Option<Plan> {
    ensure_env_loaded();
    match lock(&STATE).overridden {
        Some(over) => over,
        None => env_plan(),
    }
}

/// Whether any plan is in force (the `gd-campaign chaos` banner uses
/// this).
pub fn active() -> bool {
    current_plan().is_some()
}

/// Draws the next decision for `site` under the plan in force. False —
/// at one relaxed atomic load — when no plan is active or the site's
/// rate is zero; a true draw is counted in
/// `gd_chaos_injected_total{site=...}`.
///
/// # Panics
///
/// Panics on a site name outside [`sites::CATALOG`] (a programmer
/// error, not a configuration error) and on a malformed `GD_CHAOS`.
pub fn should_inject(site: &str) -> bool {
    ensure_env_loaded();
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let idx = site_index(site).unwrap_or_else(|| panic!("unknown chaos site {site:?}"));
    let Some(plan) = current_plan() else { return false };
    let rate = plan.rates[idx];
    if rate <= 0.0 {
        return false;
    }
    let n = SEQ[idx].fetch_add(1, Ordering::Relaxed);
    let hit = draw_unit(plan.seed, idx, n) < rate;
    if hit {
        injected_counter(site).inc();
        gd_obs::debug!("gd_chaos", "fault injected", site = site, decision = n);
    }
    hit
}

fn injected_counter(site: &str) -> std::sync::Arc<gd_obs::Counter> {
    gd_obs::counter(
        "gd_chaos_injected_total",
        "faults injected by gd-chaos, by injection site",
        &[("site", site)],
    )
}

/// Registers the `gd_chaos_injected_total` series for every site in the
/// catalog, so `/metrics` shows the full site inventory (at zero) before
/// any fault fires. The campaign engine calls this at construction.
pub fn register_metrics() {
    for (site, _) in sites::CATALOG {
        let _ = injected_counter(site);
    }
}

/// A scoped chaos override. Dropping it restores environment-driven
/// behavior and releases the serialization lock.
#[must_use = "the override ends when the guard drops"]
pub struct Guard {
    _lock: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("gd_chaos::Guard")
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        lock(&STATE).overridden = None;
        ensure_env_loaded();
        ENABLED.store(env_plan().is_some(), Ordering::Relaxed);
    }
}

fn install(over: Option<Plan>) -> Guard {
    let held = lock(&GUARD_LOCK);
    for seq in &SEQ {
        seq.store(0, Ordering::Relaxed);
    }
    lock(&STATE).overridden = Some(over);
    ENABLED.store(true, Ordering::Relaxed);
    Guard { _lock: held }
}

/// Installs `plan` process-wide until the guard drops, resetting every
/// site's decision stream to its start (so a test replays the same
/// schedule every time). Serializes with other guards.
pub fn activate(plan: Plan) -> Guard {
    install(Some(plan))
}

/// Forces chaos off process-wide until the guard drops — even against a
/// set `GD_CHAOS`. The `gd-campaign chaos` soak uses this for its
/// fault-free baseline.
pub fn suppress() -> Guard {
    install(None)
}

// ---------------------------------------------------------------------
// Injection helpers, one per site, called by the host crates.

/// `exec.slow_chunk` + `exec.worker_panic`: called by
/// `gd_exec::par_map_chunks` as each chunk starts, inside the region
/// whose panics the caller already propagates.
///
/// # Panics
///
/// Panics (with [`PANIC_PREFIX`]) when `exec.worker_panic` fires.
pub fn chunk_started(chunk: usize) {
    if should_inject(sites::EXEC_SLOW_CHUNK) {
        std::thread::sleep(SLOW_CHUNK_DELAY);
    }
    if should_inject(sites::EXEC_WORKER_PANIC) {
        panic!("{PANIC_PREFIX} injected worker panic (site exec.worker_panic, chunk {chunk})");
    }
}

/// `engine.shard_panic`: called by the campaign engine at the top of
/// every quarantined shard attempt.
///
/// # Panics
///
/// Panics (with [`PANIC_PREFIX`]) when the site fires.
pub fn shard_attempt(shard: u32) {
    if should_inject(sites::ENGINE_SHARD_PANIC) {
        panic!("{PANIC_PREFIX} injected shard panic (site engine.shard_panic, shard {shard})");
    }
}

/// `store.read_err`: true when a checkpoint/cache read should fail as
/// if the file were unreadable.
pub fn read_dropped() -> bool {
    should_inject(sites::STORE_READ_ERR)
}

/// `store.corrupt`: flips one bit in the middle of `bytes`. Returns
/// whether the site fired.
pub fn corrupt(bytes: &mut [u8]) -> bool {
    if should_inject(sites::STORE_CORRUPT) && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        return true;
    }
    false
}

/// `store.torn_write`: truncates `bytes` to half, simulating a write
/// cut off mid-file. Returns whether the site fired.
pub fn tear(bytes: &mut Vec<u8>) -> bool {
    if should_inject(sites::STORE_TORN_WRITE) {
        let keep = bytes.len() / 2;
        bytes.truncate(keep);
        return true;
    }
    false
}

/// `http.drop_conn`: true when an accepted connection should be closed
/// unanswered.
pub fn connection_dropped() -> bool {
    should_inject(sites::HTTP_DROP_CONN)
}

/// `http.delay_read`: stalls the service for [`HTTP_READ_DELAY`] when
/// the site fires.
pub fn delay_read() {
    if should_inject(sites::HTTP_DELAY_READ) {
        std::thread::sleep(HTTP_READ_DELAY);
    }
}

/// `fleet.conn_drop`: true when the dispatcher's connection to a worker
/// should fail before the shard payload is sent.
pub fn fleet_conn_dropped() -> bool {
    should_inject(sites::FLEET_CONN_DROP)
}

/// `fleet.hang`: stalls a worker for [`FLEET_HANG_DELAY`] before it
/// computes a leased shard, when the site fires.
pub fn fleet_hang() {
    if should_inject(sites::FLEET_HANG) {
        std::thread::sleep(FLEET_HANG_DELAY);
    }
}

/// `fleet.corrupt_result`: flips one bit in the middle of a shard
/// result received from a worker. Returns whether the site fired.
pub fn fleet_corrupt_result(bytes: &mut [u8]) -> bool {
    if should_inject(sites::FLEET_CORRUPT_RESULT) && !bytes.is_empty() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        return true;
    }
    false
}

/// `fleet.worker_crash`: true when a worker should die mid-shard —
/// close the connection without a response.
pub fn fleet_worker_crashed() -> bool {
    should_inject(sites::FLEET_WORKER_CRASH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_parse_and_round_trip() {
        let plan = Plan::parse("42: exec.worker_panic = 0.25 , store.torn_write=1").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate(sites::EXEC_WORKER_PANIC), 0.25);
        assert_eq!(plan.rate(sites::STORE_TORN_WRITE), 1.0);
        assert_eq!(plan.rate(sites::STORE_CORRUPT), 0.0);
        let reparsed = Plan::parse(&plan.describe()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn malformed_schedules_are_rejected_with_names() {
        for (text, needle) in [
            ("exec.worker_panic=0.5", "lacks a `<seed>:` prefix"),
            ("x:exec.worker_panic=0.5", "not an unsigned integer"),
            ("7:", "lists no sites"),
            ("7:exec.worker_panic", "not `<site>=<rate>`"),
            ("7:engine.reactor_breach=0.5", "unknown chaos site"),
            ("7:exec.worker_panic=1.5", "outside [0, 1]"),
            ("7:exec.worker_panic=-0.1", "outside [0, 1]"),
            ("7:exec.worker_panic=NaN", "outside [0, 1]"),
            ("7:exec.worker_panic=zero", "not a number"),
            ("7:exec.worker_panic=0.1,exec.worker_panic=0.2", "given twice"),
        ] {
            let err = Plan::parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err}");
        }
        // The unknown-site message teaches the catalog.
        let err = Plan::parse("7:bogus=1").unwrap_err();
        assert!(err.contains(sites::EXEC_WORKER_PANIC), "{err}");
    }

    #[test]
    fn decision_streams_are_deterministic_and_rate_faithful() {
        let plan = Plan::parse("1234:engine.shard_panic=0.3").unwrap();
        let a = plan.decisions(sites::ENGINE_SHARD_PANIC, 10_000);
        let b = plan.decisions(sites::ENGINE_SHARD_PANIC, 10_000);
        assert_eq!(a, b, "same seed, same stream");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((2_400..3_600).contains(&hits), "~30% of draws fire, got {hits}");
        // A different seed gives a different stream; rate 0/1 are exact.
        let c = plan.with_seed(1235).decisions(sites::ENGINE_SHARD_PANIC, 10_000);
        assert_ne!(a, c);
        assert!(Plan::off(1).decisions(sites::ENGINE_SHARD_PANIC, 64).iter().all(|&h| !h));
        let all = Plan::parse("9:store.read_err=1").unwrap();
        assert!(all.decisions(sites::STORE_READ_ERR, 64).iter().all(|&h| h));
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = Plan::parse("7:exec.worker_panic=0.5,exec.slow_chunk=0.5").unwrap();
        let a = plan.decisions(sites::EXEC_WORKER_PANIC, 256);
        let b = plan.decisions(sites::EXEC_SLOW_CHUNK, 256);
        assert_ne!(a, b, "equal rates must not mean equal streams");
    }

    #[test]
    fn overrides_inject_reset_and_restore() {
        {
            let _on = activate(Plan::parse("5:store.read_err=1").unwrap());
            assert!(active());
            assert!(read_dropped());
            assert!(read_dropped());
        }
        // Guard dropped: chaos follows the (unset) environment again.
        assert!(!read_dropped());
        // Reactivation replays the stream from its start.
        let plan = Plan::parse("99:store.read_err=0.5").unwrap();
        let replay = plan.decisions(sites::STORE_READ_ERR, 16);
        for _ in 0..2 {
            let _on = activate(plan);
            let live: Vec<bool> = (0..16).map(|_| read_dropped()).collect();
            assert_eq!(live, replay, "live draws replay the declared stream");
        }
        let _off = suppress();
        assert!(!active());
        assert!(!read_dropped());
    }

    #[test]
    fn injections_mutate_as_documented_and_are_counted() {
        let _on = activate(Plan::parse("3:store.torn_write=1,store.corrupt=1").unwrap());
        let mut torn = b"0123456789".to_vec();
        assert!(tear(&mut torn));
        assert_eq!(torn, b"01234", "torn writes keep the first half");
        let mut flipped = b"abcd".to_vec();
        assert!(corrupt(&mut flipped));
        assert_eq!(flipped, b"abbd", "one bit in the middle flips");
        let rendered = gd_obs::global().render_prometheus();
        assert!(
            rendered.contains(r#"gd_chaos_injected_total{site="store.torn_write"}"#),
            "injections are counted per site: {rendered}"
        );
    }

    #[test]
    fn register_metrics_exposes_every_site_at_zero() {
        register_metrics();
        let rendered = gd_obs::global().render_prometheus();
        for (site, _) in sites::CATALOG {
            assert!(
                rendered.contains(&format!(r#"gd_chaos_injected_total{{site="{site}"}}"#)),
                "missing {site} in: {rendered}"
            );
        }
    }

    #[test]
    fn fleet_sites_inject_as_documented() {
        let on = activate(
            Plan::parse("13:fleet.conn_drop=1,fleet.corrupt_result=1,fleet.worker_crash=1")
                .unwrap(),
        );
        assert!(fleet_conn_dropped());
        assert!(fleet_worker_crashed());
        let mut body = b"sealed-result".to_vec();
        assert!(fleet_corrupt_result(&mut body));
        assert_ne!(body, b"sealed-result".to_vec(), "one bit flips");
        // Guards serialize on a process-global lock; release the active
        // plan before taking the suppression guard.
        drop(on);
        let _off = suppress();
        assert!(!fleet_conn_dropped());
        assert!(!fleet_worker_crashed());
        let mut clean = b"ok".to_vec();
        assert!(!fleet_corrupt_result(&mut clean));
        assert_eq!(clean, b"ok".to_vec());
    }

    #[test]
    fn helper_panics_carry_the_marker_prefix() {
        let _on = activate(Plan::parse("11:engine.shard_panic=1,exec.worker_panic=1").unwrap());
        let err = std::panic::catch_unwind(|| shard_attempt(7)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(PANIC_PREFIX), "{msg}");
        assert!(msg.contains("shard 7"), "{msg}");
        let err = std::panic::catch_unwind(|| chunk_started(3)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(PANIC_PREFIX), "{msg}");
        assert!(msg.contains("chunk 3"), "{msg}");
    }
}
