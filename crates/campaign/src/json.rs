//! A from-scratch JSON codec — parser and serializer, zero dependencies.
//!
//! The workspace is hermetic (no registry access), so campaign specs and
//! results get their own codec. It is deliberately strict where strictness
//! buys reproducibility:
//!
//! * **Duplicate object keys are errors**, not last-wins — a spec that
//!   says `"cycles"` twice is ambiguous and must not hash two ways.
//! * **Nesting is depth-limited** (128), so adversarial input like
//!   `[[[[…` fails with an error instead of a stack overflow.
//! * **Numbers are kept exact**: integer literals that fit `i128` parse
//!   as [`Json::Int`] (covering the full `u64` seed space), everything
//!   else as finite `f64`. `NaN`/`Infinity` are rejected in both
//!   directions.
//! * Parsing **never panics** on malformed input — every failure mode is
//!   a [`JsonError`] with a byte offset.
//!
//! Serialization is deterministic: objects keep insertion order, floats
//! print with Rust's shortest round-trip formatting. That makes the
//! serialized form usable as a content-address preimage (see
//! [`crate::hash`]).

use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (fits `i128`; covers all of `u64` and `i64`).
    Int(i128),
    /// A non-integer (or oversized) finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order. Keys are unique by construction
    /// (the parser rejects duplicates).
    Obj(Vec<(String, Json)>),
}

/// A parse or serialize failure, with the byte offset where it happened
/// (offset 0 for serializer-side failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(at: usize, msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { at, msg: msg.into() })
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen; may round beyond 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    ///
    /// # Errors
    ///
    /// Fails on non-finite floats — there is no JSON spelling for them.
    pub fn to_string_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        write_value(self, None, 0, &mut out)?;
        Ok(out)
    }

    /// Serializes with two-space indentation (for on-disk specs humans
    /// read and edit).
    ///
    /// # Errors
    ///
    /// Fails on non-finite floats.
    pub fn to_string_pretty(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        write_value(self, Some(0), 0, &mut out)?;
        out.push('\n');
        Ok(out)
    }
}

fn write_value(
    v: &Json,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), JsonError> {
    if depth > MAX_DEPTH {
        return err(0, format!("serialization exceeds max depth {MAX_DEPTH}"));
    }
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(n) => {
            if !n.is_finite() {
                return err(0, format!("cannot serialize non-finite number {n}"));
            }
            // `{:?}` is Rust's shortest round-trip float formatting; it
            // always includes a '.' or exponent, so the value re-parses
            // as Num, never Int.
            out.push_str(&format!("{n:?}"));
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline(indent, depth, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !fields.is_empty() {
                newline(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if indent.is_some() {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document. Trailing content (other than
/// whitespace) is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on any malformed input;
/// never panics.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(p.pos, "trailing characters after JSON value");
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(self.pos, format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return err(self.pos, format!("nesting exceeds max depth {MAX_DEPTH}"));
        }
        match self.peek() {
            None => err(self.pos, "unexpected end of input"),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => err(self.pos, format!("unexpected character {:?}", c as char)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(self.pos, format!("invalid literal (expected `{word}`)"))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(self.pos, "expected ',' or ']' in array"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            if self.peek() != Some(b'"') {
                return err(self.pos, "expected string key in object");
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return err(key_at, format!("duplicate object key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(self.pos, "expected ',' or '}' in object"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.peek() {
                None => return err(at, "unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape(at)?;
                            out.push(c);
                            continue;
                        }
                        Some(c) => {
                            return err(at, format!("invalid escape \\{}", c as char));
                        }
                        None => return err(at, "unterminated escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return err(at, "unescaped control character in string");
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError { at, msg: "invalid UTF-8".into() })?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// pairing surrogates. Returns the decoded scalar; the cursor ends
    /// after the final hex digit.
    fn unicode_escape(&mut self, at: usize) -> Result<char, JsonError> {
        let hi = self.hex4(at)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate escape right after.
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return err(at, "unpaired high surrogate");
            }
            self.pos += 2;
            let lo = self.hex4(at)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return err(at, "invalid low surrogate");
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or(JsonError { at, msg: "invalid surrogate pair".into() })
        } else if (0xDC00..0xE000).contains(&hi) {
            err(at, "unpaired low surrogate")
        } else {
            char::from_u32(hi).ok_or(JsonError { at, msg: "invalid \\u escape".into() })
        }
    }

    fn hex4(&mut self, at: usize) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return err(at, "invalid \\u escape (need 4 hex digits)"),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return err(start, "invalid number"),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return err(start, "invalid number (digits required after '.')");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return err(start, "invalid number (digits required in exponent)");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII by construction");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
            // Fall through: magnitudes beyond i128 become floats if finite.
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => err(start, format!("number out of range: {text}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::Int(u64::MAX as i128));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Null);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\n\u{1}".into())),
            ("n", Json::Num(0.45)),
            ("i", Json::Int(-3)),
            ("l", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("e", Json::Obj(Vec::new())),
        ]);
        for text in [v.to_string_compact().unwrap(), v.to_string_pretty().unwrap()] {
            assert_eq!(parse(&text).unwrap(), v, "through {text}");
        }
    }

    #[test]
    fn rejects_malformed_without_panicking() {
        for bad in [
            "",
            "nul",
            "tru",
            "[1,",
            "[1 2]",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{'a':1}",
            "1.",
            "1e",
            "--1",
            "+1",
            "01",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800x\"",
            "\"\\udc00\"",
            "[1]]",
            "{}{}",
            "nan",
            "NaN",
            "Infinity",
            "1e999",
            "\u{7}",
            "\"a\u{0}b\"",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(e.msg.contains("duplicate"), "{e}");
        // Same key at different nesting levels is fine.
        assert!(parse(r#"{"a":{"a":1}}"#).is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("depth"), "{e}");
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
    }

    #[test]
    fn nesting_just_under_the_limit_parses() {
        let depth = MAX_DEPTH - 1;
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&doc).is_ok());
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for bits in
            [0x3FE0000000000000u64, 0x3FDCCCCCCCCCCCCD, 0x0000000000000001, 0x8000000000000000]
        {
            let f = f64::from_bits(bits);
            let text = Json::Num(f).to_string_compact().unwrap();
            match parse(&text).unwrap() {
                Json::Num(g) => assert_eq!(g.to_bits(), bits, "through {text}"),
                other => panic!("expected Num back, got {other:?} from {text}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_refuse_to_serialize() {
        assert!(Json::Num(f64::NAN).to_string_compact().is_err());
        assert!(Json::Num(f64::INFINITY).to_string_pretty().is_err());
    }
}
