//! Architectural CPU state: register file and flags.

use core::fmt;

use gd_thumb::{Flags, Reg};

/// The architectural state of the core: `r0`–`r14` plus APSR flags.
///
/// The program counter lives in [`Emu`](crate::Emu) because its visible
/// value depends on the executing instruction's address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u32; 15],
    /// APSR condition flags.
    pub flags: Flags,
    /// PRIMASK: interrupts masked (set by `cpsid i`).
    pub primask: bool,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A zeroed CPU.
    pub fn new() -> Cpu {
        Cpu { regs: [0; 15], flags: Flags::default(), primask: false }
    }

    /// Reads a register. `pc` reads as zero here; the emulator substitutes
    /// the pipeline-visible value (instruction address + 4).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::PC {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register. Writes to `pc` are ignored here; control flow is
    /// the emulator's job.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::PC {
            self.regs[r.index() as usize] = value;
        }
    }

    /// The stack pointer (`r13`).
    pub fn sp(&self) -> u32 {
        self.regs[13]
    }

    /// Sets the stack pointer.
    pub fn set_sp(&mut self, value: u32) {
        self.regs[13] = value;
    }

    /// The link register (`r14`).
    pub fn lr(&self) -> u32 {
        self.regs[14]
    }
}

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.regs.iter().enumerate() {
            if i % 4 == 0 && i != 0 {
                writeln!(f)?;
            }
            write!(f, "r{i:<2}={v:#010x} ")?;
        }
        write!(f, "flags={}", self.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_read_back() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::R3, 0xDEAD);
        cpu.set_sp(0x2000_4000);
        assert_eq!(cpu.reg(Reg::R3), 0xDEAD);
        assert_eq!(cpu.sp(), 0x2000_4000);
        assert_eq!(cpu.reg(Reg::SP), 0x2000_4000);
    }

    #[test]
    fn pc_is_externalized() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::PC, 0x1234);
        assert_eq!(cpu.reg(Reg::PC), 0);
    }

    #[test]
    fn display_shows_all_registers() {
        let cpu = Cpu::new();
        let text = cpu.to_string();
        assert!(text.contains("r14"));
        assert!(text.contains("flags="));
    }
}
