//! Microbenchmarks of the substrates: decoder throughput, emulator step
//! rate, and Reed–Solomon constant generation.

use gd_bench::timing::Harness;
use std::hint::black_box;

fn bench_decoder(h: &Harness) {
    h.bench("thumb/decode16_full_space", || {
        let mut defined = 0u32;
        for hw in 0..=u16::MAX {
            if gd_thumb::decode16(black_box(hw)).is_ok() {
                defined += 1;
            }
        }
        defined
    });
    h.bench("thumb/encode_branch", || {
        let i = gd_thumb::Instr::BCond { cond: gd_thumb::Cond::Eq, offset: black_box(6) };
        i.encode()
    });
}

fn bench_emulator(h: &Harness) {
    use gd_emu::{Emu, Perms};
    use gd_thumb::asm::assemble;
    let prog = assemble("loop:\n  adds r0, #1\n  cmp r0, #0\n  bne loop\n  bkpt #0\n", 0).unwrap();
    h.bench("emu/step_loop_10k", || {
        let mut emu = Emu::new();
        emu.mem.map("flash", 0, 0x1000, Perms::RX).unwrap();
        emu.mem.load(0, &prog.code).unwrap();
        emu.set_pc(0);
        emu.run(10_000)
    });
}

fn bench_rs_ecc(h: &Harness) {
    h.bench("rs_ecc/diversify_16_constants", || gd_rs_ecc::diversified_constants(black_box(16)));
    let rs = gd_rs_ecc::RsEncoder::new(4);
    h.bench("rs_ecc/encode_2_byte_message", || rs.encode(black_box(&[0x12, 0x34])));
}

fn main() {
    let h = Harness::from_env();
    bench_decoder(&h);
    bench_emulator(&h);
    bench_rs_ecc(&h);
}
