//! Pruning soundness: a pruned fault's simulated outcome must equal its
//! canonical representative's — sampled over the real boot campaign via
//! the workspace's deterministic check harness — plus shape and
//! determinism properties of the shard executors.

use gd_exec::check::cases;
use gd_faultsim::{boot_campaign, order1_shard, order2_shard, MfStats, O2_BUCKETS};
use gd_glitch_emu::{Outcome, Tally};

#[test]
fn clean_boot_is_no_effect() {
    let campaign = boot_campaign();
    let mut runner = campaign.runner();
    assert_eq!(runner.run(&[]), Outcome::NoEffect, "unfaulted boot reaches the marker");
    assert!(runner.replayed() > 100, "the snapshot skips the HAL bring-up");
}

/// Every sampled class member simulates to the same outcome as the
/// class representative — the equivalence the pruning layer claims.
#[test]
fn pruned_members_match_their_representative() {
    let campaign = boot_campaign();
    let mut runner = campaign.runner();
    let multi: Vec<_> = campaign
        .per_model
        .iter()
        .flat_map(|mc| mc.classes.iter().filter(|c| c.members.len() > 1))
        .collect();
    assert!(!multi.is_empty(), "dedup found multi-member classes");
    cases(48, "class member ≡ representative", |rng| {
        let class = multi[rng.usize(0, multi.len())];
        let member = class.members[rng.usize(1, class.members.len())];
        let expected = match class.outcome {
            Some(o) => o,
            None => runner.run(&[class.rep()]),
        };
        assert_eq!(runner.run(&[member]), expected, "member {member:?}");
    });
}

/// Statically classified classes (identity decodes, bus faults on
/// no-load instructions) really are No Effect when simulated.
#[test]
fn static_classes_simulate_to_no_effect() {
    let campaign = boot_campaign();
    let mut runner = campaign.runner();
    let static_classes: Vec<_> = campaign
        .per_model
        .iter()
        .flat_map(|mc| mc.classes.iter().filter(|c| c.outcome.is_some()))
        .collect();
    assert!(!static_classes.is_empty());
    cases(24, "static class ≡ no effect", |rng| {
        let class = static_classes[rng.usize(0, static_classes.len())];
        let member = class.members[rng.usize(0, class.members.len())];
        assert_eq!(runner.run(&[member]), Outcome::NoEffect, "member {member:?}");
    });
}

/// Second-order soundness: a sampled pair of class members simulates to
/// the same outcome as the pair of representatives.
#[test]
fn pair_members_match_representative_pairs() {
    let campaign = boot_campaign();
    let mut runner = campaign.runner();
    let classes: Vec<_> = campaign
        .per_model
        .iter()
        .flat_map(|mc| mc.classes.iter().filter(|c| c.outcome.is_none()))
        .collect();
    cases(32, "pair member ≡ representative pair", |rng| {
        let a = classes[rng.usize(0, classes.len())];
        let b = classes[rng.usize(0, classes.len())];
        if a.rep().site == b.rep().site {
            return;
        }
        let ma = a.members[rng.usize(0, a.members.len())];
        let mb = b.members[rng.usize(0, b.members.len())];
        let expected = runner.run(&[a.rep(), b.rep()]);
        assert_eq!(runner.run(&[ma, mb]), expected, "pair {ma:?} + {mb:?}");
    });
}

/// First-order executors: tallies cover the whole enumerated space,
/// pruning demonstrably reduces simulated trials, and at least one
/// model compromises the boot check.
#[test]
fn order1_shards_cover_the_space_and_prune() {
    let campaign = boot_campaign();
    let mut success = 0u64;
    for model in 0..campaign.per_model.len() {
        let (tally, stats) = order1_shard(model);
        assert_eq!(tally.total(), stats.enumerated, "model {model} covers its space");
        assert_eq!(stats.pruned, stats.enumerated - stats.simulated);
        assert!(stats.pruned > 0, "model {model} pruned nothing");
        assert!(stats.simulated > 0, "model {model} simulated nothing");
        success += tally.count(Outcome::Success);
    }
    assert!(success > 0, "some fault reaches the impossible path");
}

/// Second-order executors: shard results are a partition — identical
/// totals whatever the bucket, and re-running a bucket is bit-stable.
#[test]
fn order2_buckets_partition_the_pair_space() {
    let mut total = Tally::default();
    let mut stats = MfStats::default();
    for bucket in 0..O2_BUCKETS {
        let (tally, s) = order2_shard(bucket);
        total.merge(&tally);
        stats.merge(&s);
    }
    assert_eq!(total.total(), stats.enumerated);
    assert!(stats.simulated > 0);
    assert!(stats.pruned > 0);
    let (again, s_again) = order2_shard(0);
    let (first, s_first) = order2_shard(0);
    assert_eq!(again, first, "bucket execution is deterministic");
    assert_eq!(s_again, s_first);
}
