//! Static single-bit-flip classification of conditional-branch encodings.
//!
//! The dynamic sweeps ([`crate::sweep`]) *execute* every perturbation;
//! this module applies the same §IV fault model — unidirectional
//! single-bit flips — to a `B<cond>` encoding **statically**, asking only
//! what the corrupted halfword *decodes to*. That is exactly what a
//! static glitch-surface audit needs: for each conditional branch in an
//! image, how many one-bit faults turn it into its inverse, an
//! unconditional branch, or a fall-through, without booting an emulator.

use gd_thumb::{decode16, decode32_wide, is_32bit_prefix, Cond, Instr};

use crate::sweep::Direction;

/// What a corrupted conditional-branch halfword decodes to, in §IV's
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipClass {
    /// The *inverted* condition with the original offset — the worst
    /// case: the branch goes the other way on the same comparison.
    InvertedBranch,
    /// An unconditional `B` — the branch is always taken (to some
    /// offset), regardless of the guarding comparison.
    UnconditionalBranch,
    /// A non-branch instruction — the guard is effectively skipped and
    /// execution falls through into the protected region.
    FallThrough,
    /// Still a conditional branch, but with an unrelated condition or a
    /// different offset.
    OtherConditional,
    /// Some other control-flow instruction (`BX`, pop-pc…).
    OtherBranch,
    /// The flip turned the halfword into a 32-bit prefix and, together
    /// with the *following* halfword, the pair decodes to a wide branch
    /// (`BL`, `B.W`, `B<cond>.W`, or a load into PC) — control leaves the
    /// guarded region, almost always far from the original target.
    WideBranch,
    /// The flipped prefix plus the next halfword decode to a wide load
    /// (`LDR.W`): the guard is skipped *and* a register is clobbered from
    /// attacker-influenced memory.
    WideLoad,
    /// The flipped prefix plus the next halfword decode to some other
    /// wide instruction (data processing, `STR.W`) — the guard is
    /// consumed along with its successor, so execution falls through.
    WideOther,
    /// The flipped prefix plus the next halfword form an undefined 32-bit
    /// pattern (a usage fault on hardware).
    WideUndefined,
    /// The first halfword of a 32-bit encoding whose second halfword is
    /// unknown to the caller (image edge, or no context supplied).
    WidePrefix,
    /// The pattern does not decode (likely a usage fault on hardware).
    Undefined,
}

impl FlipClass {
    /// Whether this corruption diverts control flow in one of the three
    /// ways §IV's taxonomy scores against a conditional branch: inverse,
    /// unconditional, or fall-through.
    pub fn is_diversion(self) -> bool {
        matches!(
            self,
            FlipClass::InvertedBranch | FlipClass::UnconditionalBranch | FlipClass::FallThrough
        )
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FlipClass::InvertedBranch => "inverted",
            FlipClass::UnconditionalBranch => "unconditional",
            FlipClass::FallThrough => "fall-through",
            FlipClass::OtherConditional => "other-cond",
            FlipClass::OtherBranch => "other-branch",
            FlipClass::WideBranch => "wide-branch",
            FlipClass::WideLoad => "wide-load",
            FlipClass::WideOther => "wide-other",
            FlipClass::WideUndefined => "wide-undefined",
            FlipClass::WidePrefix => "wide-prefix",
            FlipClass::Undefined => "undefined",
        }
    }
}

/// One unidirectional single-bit flip of a branch encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flip {
    /// Bit position (0–15).
    pub bit: u8,
    /// Flip direction ([`Direction::And`] clears a set bit,
    /// [`Direction::Or`] sets a clear bit — each bit admits exactly one).
    pub direction: Direction,
    /// The corrupted halfword.
    pub encoding: u16,
    /// What the corruption decodes to.
    pub class: FlipClass,
}

/// The full single-bit flip profile of one `B<cond>` encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchFlips {
    /// The branch's condition.
    pub cond: Cond,
    /// The branch's offset.
    pub offset: i32,
    /// All 16 unidirectional single-bit flips, in bit order.
    pub flips: Vec<Flip>,
}

impl BranchFlips {
    /// Flips landing in `class`.
    pub fn count(&self, class: FlipClass) -> usize {
        self.flips.iter().filter(|f| f.class == class).count()
    }

    /// Flips that divert control flow (see [`FlipClass::is_diversion`]).
    pub fn diversions(&self) -> usize {
        self.flips.iter().filter(|f| f.class.is_diversion()).count()
    }
}

/// Computes the single-bit flip profile of `hw`, or `None` when `hw` is
/// not a conditional branch.
///
/// Flips that land in the 32-bit prefix space are reported as the opaque
/// [`FlipClass::WidePrefix`]; when the halfword *following* the branch is
/// known, use [`branch_flips_with`] to resolve them to what the resulting
/// wide instruction actually does.
pub fn branch_flips(hw: u16) -> Option<BranchFlips> {
    branch_flips_with(hw, None)
}

/// [`branch_flips`] with the following halfword supplied: flips into the
/// 32-bit prefix space classify the *pair* `(flipped, hw2)` through the
/// wide decoder instead of stopping at [`FlipClass::WidePrefix`].
///
/// Pass `None` only when the branch is the last halfword of its code
/// extent — on hardware the pipeline would fetch whatever lies after it.
pub fn branch_flips_with(hw: u16, hw2: Option<u16>) -> Option<BranchFlips> {
    let Ok(Instr::BCond { cond, offset }) = decode16(hw) else {
        return None;
    };
    let flips = (0u8..16)
        .map(|bit| {
            let mask = 1u16 << bit;
            let direction = if hw & mask != 0 { Direction::And } else { Direction::Or };
            let encoding = direction.apply(hw, mask);
            Flip { bit, direction, encoding, class: classify(cond, offset, encoding, hw2) }
        })
        .collect();
    Some(BranchFlips { cond, offset, flips })
}

/// Classifies what `encoding` means relative to the original
/// `B<cond> <offset>`, resolving prefix flips through `hw2` when known.
fn classify(cond: Cond, offset: i32, encoding: u16, hw2: Option<u16>) -> FlipClass {
    if is_32bit_prefix(encoding) {
        let Some(hw2) = hw2 else {
            return FlipClass::WidePrefix;
        };
        return match decode32_wide(encoding, hw2) {
            Ok(i) if i.is_branch() => FlipClass::WideBranch,
            Ok(i) if i.is_load() => FlipClass::WideLoad,
            Ok(_) => FlipClass::WideOther,
            Err(_) => FlipClass::WideUndefined,
        };
    }
    match decode16(encoding) {
        Ok(Instr::BCond { cond: c, offset: o }) if c == cond.invert() && o == offset => {
            FlipClass::InvertedBranch
        }
        Ok(Instr::BCond { .. }) => FlipClass::OtherConditional,
        Ok(Instr::B { .. }) => FlipClass::UnconditionalBranch,
        Ok(i) if i.is_branch() => FlipClass::OtherBranch,
        Ok(_) => FlipClass::FallThrough,
        Err(_) => FlipClass::Undefined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_thumb::asm::assemble;

    fn encoding_of(cond: Cond) -> u16 {
        let src = format!("target:\nb{cond} target\n");
        let prog = assemble(&src, 0).unwrap();
        u16::from_le_bytes([prog.code[0], prog.code[1]])
    }

    #[test]
    fn non_branches_have_no_profile() {
        assert!(branch_flips(0x0000).is_none(), "lsls is not a cond branch");
        assert!(branch_flips(0xE000).is_none(), "unconditional b is not");
        assert!(branch_flips(0xBF00).is_none(), "nop is not");
    }

    #[test]
    fn every_cond_has_a_single_bit_inverse_flip() {
        // Cond pairs differ in the low bit of the cond field (bit 8), so
        // exactly one unidirectional flip yields the inverted branch.
        for cond in Cond::ALL {
            let profile = branch_flips(encoding_of(cond)).unwrap();
            assert_eq!(profile.flips.len(), 16);
            assert_eq!(
                profile.count(FlipClass::InvertedBranch),
                1,
                "b{cond}: bit 8 flips the polarity"
            );
            let inv = profile.flips.iter().find(|f| f.class == FlipClass::InvertedBranch).unwrap();
            assert_eq!(inv.bit, 8, "b{cond}");
        }
    }

    #[test]
    fn beq_profile_matches_hand_analysis() {
        let beq = encoding_of(Cond::Eq); // 0xD0xx
        let profile = branch_flips(beq).unwrap();
        assert_eq!(profile.cond, Cond::Eq);
        // Clearing bit 15 (0xD0 → 0x50) lands in the load/store space;
        // clearing bit 14 (0xD0 → 0x90) likewise — never a branch.
        for f in &profile.flips {
            match f.bit {
                8 => assert_eq!(f.class, FlipClass::InvertedBranch),
                15 | 14 => assert!(
                    !matches!(f.class, FlipClass::InvertedBranch | FlipClass::UnconditionalBranch),
                    "clearing the top bits leaves the branch space: {f:?}"
                ),
                _ => {}
            }
        }
        // The And direction is used exactly on the set bits.
        for f in &profile.flips {
            let set = beq & (1 << f.bit) != 0;
            assert_eq!(f.direction == Direction::And, set);
            assert_ne!(f.encoding, beq, "every flip changes the encoding");
        }
    }

    #[test]
    fn diversions_count_the_three_dangerous_classes() {
        let profile = branch_flips(encoding_of(Cond::Eq)).unwrap();
        let by_hand = profile.count(FlipClass::InvertedBranch)
            + profile.count(FlipClass::UnconditionalBranch)
            + profile.count(FlipClass::FallThrough);
        assert_eq!(profile.diversions(), by_hand);
        assert!(profile.diversions() >= 1, "the inverse flip alone guarantees one");
    }

    #[test]
    fn wide_prefix_flips_are_recognized() {
        // 0xD0xx with bit 13 set becomes 0xF0xx — a 32-bit prefix. With
        // no second halfword supplied, the class stays the opaque
        // `WidePrefix`.
        let profile = branch_flips(encoding_of(Cond::Eq)).unwrap();
        let f = profile.flips.iter().find(|f| f.bit == 13).unwrap();
        assert_eq!(f.direction, Direction::Or);
        assert_eq!(f.class, FlipClass::WidePrefix);
    }

    #[test]
    fn prefix_flips_resolve_through_the_following_halfword() {
        let beq = encoding_of(Cond::Eq); // 0xD0FE (beq .-4 back at itself)
        let flip13 = |hw2| {
            let profile = branch_flips_with(beq, Some(hw2)).unwrap();
            profile.flips.iter().find(|f| f.bit == 13).unwrap().class
        };
        // beq | bit13 = 0xF0FE; what the pair means depends entirely on
        // the successor halfword the pipeline fetches:
        assert_eq!(flip13(0xF800), FlipClass::WideBranch, "0xF0FE F800 is BL");
        assert_eq!(flip13(0xB800), FlipClass::WideBranch, "0xF0FE B800 is B.W");
        assert_eq!(flip13(0xC000), FlipClass::WideUndefined, "0xF0FE C000 is BLX");
        // 0xF0FE carries op4 = 0b0111 in the data-processing position —
        // not an allocated opcode — so any hw2[15] = 0 successor is a
        // wide usage fault.
        assert_eq!(flip13(0x0001), FlipClass::WideUndefined);
        // A flip landing on a *valid* data-processing prefix is
        // fall-through-like: bcs .+? (0xD240) with bit 13 set is 0xF240,
        // the MOVW prefix; paired with 0x0100 that is `movw r1, #0`.
        let bcs = 0xD240;
        let profile = branch_flips_with(bcs, Some(0x0100)).unwrap();
        let f = profile.flips.iter().find(|f| f.bit == 13).unwrap();
        assert_eq!(f.encoding, 0xF240);
        assert_eq!(f.class, FlipClass::WideOther);
        // And one in the load/store group resolves to a wide load: bhi
        // (0xD8DF) with bit 13 set is 0xF8DF, the LDR.W literal prefix.
        let bhi = 0xD8DF;
        let profile = branch_flips_with(bhi, Some(0x1000)).unwrap();
        let f = profile.flips.iter().find(|f| f.bit == 13).unwrap();
        assert_eq!(f.encoding, 0xF8DF);
        assert_eq!(f.class, FlipClass::WideLoad, "0xF8DF 1000 is ldr.w r1, [pc]");
        // None of the wide classes count as §IV diversions, and the
        // diversion total is independent of the supplied context.
        let with = branch_flips_with(beq, Some(0xF800)).unwrap();
        let without = branch_flips(beq).unwrap();
        assert_eq!(with.diversions(), without.diversions());
    }
}
