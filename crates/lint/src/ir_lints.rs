//! IR-level missing-defense lints (`GL01xx`).
//!
//! These lints check the **artifact** the GlitchResistor passes produce,
//! never a parallel heuristic: branch and loop re-checks are read from the
//! [`gd_ir::GuardInfo`] annotations the passes record, the return-code
//! candidate set comes from the pass's own exported predicate, and the
//! delay lint inspects the actual trailing call instruction. On a module
//! hardened with every defense the whole family reports zero findings;
//! each disabled defense surfaces as its lint's findings.

use std::collections::BTreeSet;

use gd_ir::{natural_loops, Cfg, DomTree, Function, Instr, Module, Terminator, ValueDef};
use glitch_resistor::{is_runtime_fn, return_code_candidates, DELAY_FN};

use crate::engine::Finding;

/// Minimum pairwise Hamming distance before constants count as
/// glitch-distinguishable (the Reed–Solomon encoder guarantees ≥ 8).
pub const MIN_HAMMING: u32 = 8;

/// Minimum set/clear bit population for a single constant (rules out 0,
/// 1, 0xFF, all-ones — values one burst glitch can produce).
pub const MIN_POPCOUNT: u32 = 4;

/// Runs every `GL01xx` lint over `module`.
pub fn lint_module(module: &Module) -> Vec<Finding> {
    let mut findings = Vec::new();
    for func in &module.funcs {
        lint_branches(func, &mut findings);
        lint_loops(func, &mut findings);
        lint_delays(func, &mut findings);
        lint_stores(module, func, &mut findings);
    }
    lint_return_codes(module, &mut findings);
    lint_enums(module, &mut findings);
    findings
}

/// GL0101: every application conditional branch must carry a duplicated
/// complement re-check (recorded by the branch-duplication pass). Blocks
/// the passes synthesized — re-checks and detection trampolines — are
/// guards themselves, not application control flow.
fn lint_branches(func: &Function, findings: &mut Vec<Finding>) {
    for bb in func.block_ids() {
        let Some(Terminator::CondBr { then_bb, else_bb, .. }) = func.block(bb).term else {
            continue;
        };
        if then_bb == else_bb || func.guards.is_guard_block(bb) {
            continue;
        }
        if !func.guards.branch_checks.iter().any(|c| c.site == bb) {
            findings.push(Finding::new(
                "GL0101",
                &func.name,
                &func.block(bb).name,
                "conditional branch is not duplicated: one glitch flips it undetected".to_owned(),
            ));
        }
    }
}

/// GL0102: every loop-exit conditional branch must carry a loop-integrity
/// re-check. The linter recomputes natural loops from the final CFG, so a
/// pass that *claims* hardening but leaves an exit edge bare is caught.
fn lint_loops(func: &Function, findings: &mut Vec<Finding>) {
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let mut flagged = BTreeSet::new();
    for lp in natural_loops(func, &cfg, &dom) {
        for &bb in &lp.body {
            let Some(Terminator::CondBr { then_bb, else_bb, .. }) = func.block(bb).term else {
                continue;
            };
            let exits = !lp.contains(then_bb) || !lp.contains(else_bb);
            if !exits || func.guards.is_guard_block(bb) {
                continue;
            }
            if !func.guards.loop_checks.iter().any(|c| c.site == bb) && flagged.insert(bb) {
                findings.push(Finding::new(
                    "GL0102",
                    &func.name,
                    &func.block(bb).name,
                    "loop exit edge has no integrity re-check: one glitch escapes the loop"
                        .to_owned(),
                ));
            }
        }
    }
}

/// GL0103: functions the return-code pass would diversify must have
/// pairwise-distant constants. Reuses the pass's exported candidate
/// predicate, so linter and transform agree by construction. The runtime's
/// own helpers are injected after the pass runs and are exempt.
fn lint_return_codes(module: &Module, findings: &mut Vec<Finding>) {
    for (name, consts) in return_code_candidates(module) {
        if is_runtime_fn(&name) {
            continue;
        }
        for i in 0..consts.len() {
            for j in i + 1..consts.len() {
                let (a, b) = (consts[i] as u32, consts[j] as u32);
                let hd = (a ^ b).count_ones();
                if hd < MIN_HAMMING {
                    findings.push(Finding::new(
                        "GL0103",
                        &name,
                        "",
                        format!(
                            "return codes {a:#x} and {b:#x} are {hd} bit flips apart \
                             (want ≥ {MIN_HAMMING})"
                        ),
                    ));
                }
            }
        }
    }
}

/// GL0104: enum constants a single burst glitch can reach — values with
/// fewer than [`MIN_POPCOUNT`] set or clear bits (0, 1, 0xFF, …) or pairs
/// closer than [`MIN_HAMMING`] bit flips.
fn lint_enums(module: &Module, findings: &mut Vec<Finding>) {
    for e in &module.enums {
        let values: Vec<u32> = (0..e.variants.len() as u32).map(|i| e.value_of(i) as u32).collect();
        let mut weak = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if v.count_ones() < MIN_POPCOUNT || v.count_zeros() < MIN_POPCOUNT {
                weak.push(format!("{} = {v:#x}", e.variants[i].0));
            }
        }
        for i in 0..values.len() {
            for j in i + 1..values.len() {
                let hd = (values[i] ^ values[j]).count_ones();
                if hd < MIN_HAMMING {
                    weak.push(format!(
                        "{}↔{} only {hd} bit flips apart",
                        e.variants[i].0, e.variants[j].0
                    ));
                }
            }
        }
        if !weak.is_empty() {
            findings.push(Finding::new(
                "GL0104",
                &e.name,
                "",
                format!("trivially glitchable enum constants: {}", weak.join(", ")),
            ));
        }
    }
}

/// GL0105: in a hardened image every branching block ends with a
/// `gr_delay()` call, so an attacker cannot time a glitch against a fixed
/// branch offset. This checks the actual trailing instruction, one
/// finding per function. The runtime itself is exempt (the delay pass
/// never instruments it — `gr_delay` must not call itself).
fn lint_delays(func: &Function, findings: &mut Vec<Finding>) {
    if is_runtime_fn(&func.name) {
        return;
    }
    let mut missing = 0usize;
    let mut total = 0usize;
    for bb in func.block_ids() {
        if !matches!(
            func.block(bb).term,
            Some(Terminator::Br { .. }) | Some(Terminator::CondBr { .. })
        ) {
            continue;
        }
        total += 1;
        let delayed = func.block(bb).instrs.last().is_some_and(|&last| {
            matches!(
                func.value(last),
                ValueDef::Instr(Instr::Call { callee, .. }) if callee == DELAY_FN
            )
        });
        if !delayed {
            missing += 1;
        }
    }
    if missing > 0 {
        findings.push(Finding::new(
            "GL0105",
            &func.name,
            "",
            format!("{missing} of {total} branching blocks lack a trailing gr_delay() call"),
        ));
    }
}

/// GL0106: every store to a `sensitive` global must be annotated as
/// shadowed by the data-integrity pass; a bare store lets a glitched
/// write go undetected at the next checked load.
fn lint_stores(module: &Module, func: &Function, findings: &mut Vec<Finding>) {
    for bb in func.block_ids() {
        for &id in &func.block(bb).instrs {
            let ValueDef::Instr(Instr::Store { ptr, .. }) = func.value(id) else {
                continue;
            };
            let ValueDef::Instr(Instr::GlobalAddr { name }) = func.value(*ptr) else {
                continue;
            };
            let sensitive = module.globals.iter().any(|g| g.sensitive && &g.name == name);
            if sensitive && !func.guards.shadowed_stores.contains(&id) {
                findings.push(Finding::new(
                    "GL0106",
                    &func.name,
                    &func.block(bb).name,
                    format!("store to sensitive global @{name} bypasses its complement shadow"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_ir::parse_module;
    use glitch_resistor::{harden, Config, Defenses};

    const SRC: &str = "
enum Status { FAILURE, SUCCESS }
global @tick : i32 = 0 sensitive

fn @get_status(%sig: i32) -> i32 {
entry:
  %ok = icmp eq i32 %sig, 0x1234
  br %ok, good, bad
good:
  ret i32 1
bad:
  ret i32 0
}

fn @main(%n: i32) -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %i2 = add i32 %i, 1
  %p = globaladdr @tick
  store i32 %i2, %p
  %c = icmp ult i32 %i2, %n
  br %c, loop, done
done:
  %r = call i32 @get_status(%n)
  %ok = icmp eq i32 %r, 1
  br %ok, yes, no
yes:
  ret i32 100
no:
  ret i32 200
}
";

    fn counts_for(defenses: Defenses) -> std::collections::BTreeMap<&'static str, u64> {
        let mut m = parse_module(SRC).unwrap();
        harden(&mut m, &Config::new(defenses));
        let findings = lint_module(&m);
        let mut counts = std::collections::BTreeMap::new();
        for f in &findings {
            *counts.entry(f.lint).or_insert(0u64) += 1;
        }
        counts
    }

    #[test]
    fn unhardened_module_trips_every_lint() {
        let counts = counts_for(Defenses::NONE);
        assert_eq!(counts.get("GL0101"), Some(&3), "{counts:?}");
        assert_eq!(counts.get("GL0102"), Some(&1), "loop guard: {counts:?}");
        assert_eq!(counts.get("GL0103"), Some(&1), "get_status 0/1: {counts:?}");
        assert_eq!(counts.get("GL0104"), Some(&1), "Status enum: {counts:?}");
        assert_eq!(counts.get("GL0105"), Some(&2), "both functions branch: {counts:?}");
        assert_eq!(counts.get("GL0106"), Some(&1), "@tick store: {counts:?}");
    }

    #[test]
    fn fully_hardened_module_is_clean() {
        let counts = counts_for(Defenses::ALL);
        assert!(counts.is_empty(), "all defenses leave nothing to report: {counts:?}");
    }

    #[test]
    fn each_defense_silences_exactly_its_lint() {
        let baseline = counts_for(Defenses::NONE);
        for (defense, lint) in [
            (Defenses::LOOPS, "GL0102"),
            (Defenses::RETURNS, "GL0103"),
            (Defenses::ENUMS, "GL0104"),
            (Defenses::INTEGRITY, "GL0106"),
        ] {
            let counts = counts_for(defense);
            assert_eq!(counts.get(lint), None, "{lint} silenced: {counts:?}");
            for (other, n) in &baseline {
                if *other != lint && *other != "GL0101" && *other != "GL0105" {
                    assert_eq!(counts.get(other), Some(n), "{other} unaffected: {counts:?}");
                }
            }
        }
    }

    #[test]
    fn branch_duplication_silences_gl0101_without_hiding_loops() {
        let counts = counts_for(Defenses::BRANCHES);
        assert_eq!(counts.get("GL0101"), None, "{counts:?}");
        // Loop guards (main's, and the runtime's busy-wait) have their
        // then-edges re-checked but their exit edges still unprotected.
        assert!(counts.get("GL0102").is_some_and(|&n| n >= 1), "{counts:?}");
    }

    #[test]
    fn delay_alone_silences_gl0105_for_app_code() {
        let counts = counts_for(Defenses::DELAY);
        assert_eq!(counts.get("GL0105"), None, "{counts:?}");
    }

    #[test]
    fn lints_read_the_artifact_not_the_annotation_alone() {
        // Strip one annotation from a hardened module: the lint must fire
        // again, proving it trusts recorded guards only where they exist.
        let mut m = parse_module(SRC).unwrap();
        harden(&mut m, &Config::new(Defenses::ALL));
        let f = m.funcs.iter_mut().find(|f| f.name == "main").unwrap();
        f.guards.shadowed_stores.clear();
        let findings = lint_module(&m);
        assert!(
            findings.iter().any(|f| f.lint == "GL0106" && f.function == "main"),
            "cleared annotation resurfaces as a finding"
        );
    }
}
