//! Automated glitch-parameter tuning (§V-B): find parameters that succeed
//! 10 out of 10 times, starting from a coarse wide-glitch sweep and
//! recursively increasing precision.
//!
//! The paper's algorithm: scan (width, offset) with a 10-cycle glitch that
//! blankets the whole loop; once *some* success is seen, test each
//! individual clock cycle, then refine the neighborhood until a parameter
//! set is 100% reliable (10/10). It reports both the attempt count and the
//! bench wall-clock this corresponds to (each attempt costs a board reset
//! plus serial round-trips — ~95 ms on the paper's rig, inferred from
//! 36,869 attempts ≈ 59 minutes).

use crate::device::Device;
use crate::model::{FaultModel, GlitchParams};
use crate::scan::{run_attack, AttackOutcome, AttackSpec};

/// Wall-clock cost per attempt on the physical rig (seconds).
pub const SECONDS_PER_ATTEMPT: f64 = 0.095;

/// Result of a tuning search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Total glitch attempts.
    pub attempts: u64,
    /// Total successful glitches observed while searching.
    pub successes: u64,
    /// Parameters that achieved 10/10, if any.
    pub found: Option<GlitchParams>,
    /// Reliability of `found` over the final verification (0..=10).
    pub verified: u32,
}

impl SearchReport {
    /// Bench wall-clock the search would have taken (minutes).
    pub fn minutes(&self) -> f64 {
        self.attempts as f64 * SECONDS_PER_ATTEMPT / 60.0
    }
}

/// Runs the §V-B search against `device`.
///
/// `loop_cycles` is the number of clock cycles one loop iteration spans
/// (the initial blanket glitch covers all of them, exactly as the paper's
/// "10 cycle clock glitch, which encompasses every instruction in the
/// while loop").
pub fn find_reliable_params(
    device: &Device,
    model: &FaultModel,
    spec: &AttackSpec,
    loop_cycles: u32,
) -> SearchReport {
    let mut report = SearchReport { attempts: 0, successes: 0, found: None, verified: 0 };
    let mut boot = 0u64;
    let mut try_params = |params: GlitchParams, report: &mut SearchReport| -> bool {
        boot += 1;
        report.attempts += 1;
        let attempt = run_attack(device, model, params, boot, spec, None);
        let ok = attempt.outcome == AttackOutcome::Success;
        if ok {
            report.successes += 1;
        }
        ok
    };

    // Phase 1: coarse sweep with a blanket glitch (step 3 over the grid).
    let mut coarse_hits: Vec<GlitchParams> = Vec::new();
    let mut width = -49i32;
    while width <= 49 {
        let mut offset = -49i32;
        while offset <= 49 {
            let params = GlitchParams {
                ext_offset: 0,
                repeat: loop_cycles,
                width: width as i8,
                offset: offset as i8,
            };
            if try_params(params, &mut report) {
                coarse_hits.push(params);
            }
            offset += 3;
        }
        width += 3;
    }

    // Phase 2: per-cycle refinement of each coarse hit, then a fine local
    // neighborhood scan, then 10/10 verification.
    for hit in coarse_hits {
        for cycle in 0..loop_cycles {
            let single = GlitchParams::single(cycle, hit.width, hit.offset);
            if !try_params(single, &mut report) {
                continue;
            }
            // Phase 3: refine the neighborhood at this cycle.
            for dw in -2i32..=2 {
                for do_ in -2i32..=2 {
                    let w = (i32::from(hit.width) + dw).clamp(-49, 49) as i8;
                    let o = (i32::from(hit.offset) + do_).clamp(-49, 49) as i8;
                    let cand = GlitchParams::single(cycle, w, o);
                    if !try_params(cand, &mut report) {
                        continue;
                    }
                    // Verification: 10 fresh attempts.
                    let mut good = 1u32; // the attempt above counts
                    for _ in 0..9 {
                        if try_params(cand, &mut report) {
                            good += 1;
                        }
                    }
                    if good == 10 {
                        report.found = Some(cand);
                        report.verified = good;
                        return report;
                    }
                    report.verified = report.verified.max(good);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SuccessCheck;
    use crate::targets;

    #[test]
    fn search_finds_reliable_parameters_for_while_a() {
        let dev = Device::from_asm(targets::WHILE_A).unwrap();
        let model = FaultModel::default();
        let spec = AttackSpec { success: SuccessCheck::Bkpt(1), max_cycles: 600 };
        let report = find_reliable_params(&dev, &model, &spec, 10);
        assert!(report.attempts > 100, "the search actually searched");
        assert!(report.successes > 0, "blanket glitches hit something");
        let found = report.found.expect("a 10/10 parameter set exists");
        assert_eq!(report.verified, 10);
        // And it replays reliably outside the search too.
        let mut wins = 0;
        for boot in 1000..1010 {
            let attempt = run_attack(&dev, &model, found, boot, &spec, None);
            if attempt.outcome == crate::scan::AttackOutcome::Success {
                wins += 1;
            }
        }
        assert!(wins >= 9, "found params stay reliable: {wins}/10");
    }

    #[test]
    fn minutes_accounting() {
        let r = SearchReport { attempts: 36_869, successes: 0, found: None, verified: 0 };
        let m = r.minutes();
        assert!((55.0..65.0).contains(&m), "~59 minutes like the paper, got {m:.1}");
    }
}
