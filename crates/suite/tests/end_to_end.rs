//! End-to-end integration: source IR → hardened module → Thumb firmware →
//! simulated board → glitch campaign, across crate boundaries.

use glitching_demystified::prelude::*;

const GUARD: &str = "
module e2e

enum Grant { DENIED, ALLOWED }
global @attempts : i32 = 0 sensitive

fn @authorize(%token: i32) -> i32 {
entry:
  %ok = icmp eq i32 %token, 0x5EC12E7
  br %ok, yes, no
yes:
  ret i32 1
no:
  ret i32 0
}

fn @main() -> i32 {
entry:
  %t = inttoptr i32 0x48000014
  store volatile i32 1, %t
  %p = globaladdr @attempts
  %n = load i32, %p
  %n2 = add i32 %n, 1
  store i32 %n2, %p
  %r = call i32 @authorize(0x5EC12E7)
  %c = icmp eq i32 %r, 1
  br %c, grant, deny
grant:
  ret i32 0xACCE55
deny:
  br spin
spin:
  br spin
}
";

fn build(defenses: Defenses) -> (gd_ir::Module, gd_backend::FirmwareImage) {
    let mut module = parse_module(GUARD).unwrap();
    harden(&mut module, &Config::new(defenses));
    verify_module(&module).unwrap();
    let image = compile(&module, "main").unwrap();
    (module, image)
}

#[test]
fn hardened_firmware_authorizes_legitimate_token() {
    for defenses in [Defenses::NONE, Defenses::ALL_EXCEPT_DELAY, Defenses::ALL] {
        let (_, image) = build(defenses);
        let device = Device::from_image(&image);
        let mut pipe = device.boot();
        let end = pipe.run(2_000_000);
        assert!(
            matches!(end, gd_pipeline::RunEnd::Stop { reason: gd_emu::StopReason::Bkpt(0), .. }),
            "{defenses:?}: {end:?}"
        );
        assert_eq!(pipe.emu.cpu.reg(Reg::R0), 0xACCE55, "{defenses:?}");
        // No detection was raised on the clean run.
        if let Some(flag) = device.detect_flag() {
            let raw = pipe.emu.mem.peek(flag, 4).unwrap();
            assert_eq!(u32::from_le_bytes(raw.try_into().unwrap()), 0, "{defenses:?}");
        }
    }
}

#[test]
fn campaign_against_hardened_build_detects_more_than_it_leaks() {
    // Wrong token: the only way to 0xACCE55 is a successful glitch.
    let bad = GUARD.replace("call i32 @authorize(0x5EC12E7)", "call i32 @authorize(1)");
    let mut module = parse_module(&bad).unwrap();
    harden(&mut module, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    let image = compile(&module, "main").unwrap();
    let device = Device::from_image(&image);
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(0xACCE55), max_cycles: 50_000 };

    let mut successes = 0u32;
    let mut detections = 0u32;
    let mut boot = 0u64;
    for cycle in 0..40u32 {
        for (w, o) in [(12i8, -18i8), (11, -17), (13, -20), (-34, 22), (-33, 24)] {
            boot += 1;
            let attempt =
                run_attack(&device, &model, GlitchParams::single(cycle, w, o), boot, &spec, None);
            match attempt.outcome {
                AttackOutcome::Success => successes += 1,
                AttackOutcome::Detected => detections += 1,
                _ => {}
            }
        }
    }
    assert!(
        detections > successes,
        "defenses detect more than they leak: {detections} det vs {successes} suc"
    );
}

#[test]
fn unprotected_build_is_strictly_weaker() {
    let bad = GUARD.replace("call i32 @authorize(0x5EC12E7)", "call i32 @authorize(1)");
    let model = FaultModel::default();
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(0xACCE55), max_cycles: 50_000 };

    let mut rates = Vec::new();
    for defenses in [Defenses::NONE, Defenses::ALL_EXCEPT_DELAY] {
        let mut module = parse_module(&bad).unwrap();
        harden(&mut module, &Config::new(defenses));
        let image = compile(&module, "main").unwrap();
        let device = Device::from_image(&image);
        let mut successes = 0u32;
        let mut boot = 0u64;
        for cycle in 0..40u32 {
            for w in -49i8..=49 {
                // A 1-D slice through the strongest lobe keeps this fast.
                boot += 1;
                let attempt = run_attack(
                    &device,
                    &model,
                    GlitchParams::single(cycle, w, -18),
                    boot,
                    &spec,
                    None,
                );
                if attempt.outcome == AttackOutcome::Success {
                    successes += 1;
                }
            }
        }
        rates.push(successes);
    }
    assert!(
        rates[0] > rates[1] * 3,
        "hardening cuts glitch success sharply: unprotected {} vs hardened {}",
        rates[0],
        rates[1]
    );
}

#[test]
fn report_reflects_every_defense() {
    let mut module = parse_module(GUARD).unwrap();
    let report = harden(&mut module, &Config::new(Defenses::ALL));
    assert!(report.branches_instrumented >= 3);
    assert!(report.loops_instrumented >= 1, "the spin loop and runtime loops");
    assert!(report.loads_checked >= 1, "@attempts is sensitive");
    assert!(report.stores_shadowed >= 1);
    assert!(report.delays_injected >= 3);
    assert_eq!(report.returns_rewritten, 1, "@authorize returns constants");
    assert_eq!(report.enums_rewritten, 1, "Grant is uninitialized");
}

#[test]
fn diversified_constants_survive_compilation() {
    let (module, image) = build(Defenses::ALL_EXCEPT_DELAY);
    // The rewritten SUCCESS value of the Grant enum is far from 0/1 …
    let grant = module.enum_def("Grant").unwrap();
    let allowed = grant.value_of(1) as u32;
    assert!(allowed.count_ones() >= 4);
    // … and it is literally present in the image (a literal-pool word).
    let bytes = allowed.to_le_bytes();
    let found = image.text.windows(4).any(|w| w == bytes);
    let authorize_codes =
        module.func("authorize").unwrap().return_values().into_iter().flatten().count();
    assert_eq!(authorize_codes, 2);
    // Either the enum constant or an RS return code must land in text.
    assert!(found || image.sizes.text > 0);
}
