//! The campaign CLI: run a campaign spec locally or serve the campaign
//! engine over HTTP.
//!
//! ```text
//! gd-campaign run <spec.json|workload> [--store DIR] [--workers A,B,...]
//! gd-campaign key <spec.json|workload>
//! gd-campaign serve [--addr HOST:PORT] [--store DIR] [--queue N]
//!                   [--quota N] [--workers A,B,...]
//! gd-campaign worker [--addr HOST:PORT]
//! gd-campaign chaos <spec.json|workload> --schedule SEED:SITE=RATE,...
//!                   [--runs N] [--attempts N] [--golden FILE] [--store DIR]
//! ```
//!
//! `<spec.json|workload>` is either a path to a spec file or a bare
//! workload name (`fig2`, `table1`, `table2`, `table3`, `table6`,
//! `multifault`) for
//! the published configuration.
//!
//! `chaos` is the self-healing acceptance harness: it runs the campaign
//! under a deterministic gd-chaos fault schedule `--runs` times (each
//! run re-seeded so the faults land differently) and asserts every
//! surviving run is **bit-identical** to the fault-free result — which
//! is computed under chaos suppression, or taken from `--golden`.

use std::process::ExitCode;
use std::sync::Arc;

use gd_campaign::fleet::{FleetConfig, FleetDispatcher, WorkerServer};
use gd_campaign::service::{Server, ServerConfig};
use gd_campaign::{CampaignSpec, Engine};

fn usage() -> ExitCode {
    eprintln!(
        "usage: gd-campaign run <spec.json|workload> [--store DIR] [--workers A,B,...]\n\
         \x20      gd-campaign key <spec.json|workload>\n\
         \x20      gd-campaign serve [--addr HOST:PORT] [--store DIR] [--queue N]\n\
         \x20                        [--quota N] [--workers A,B,...]\n\
         \x20      gd-campaign worker [--addr HOST:PORT]\n\
         \x20      gd-campaign chaos <spec.json|workload> --schedule SEED:SITE=RATE,...\n\
         \x20                        [--runs N] [--attempts N] [--golden FILE] [--store DIR]"
    );
    ExitCode::from(2)
}

/// Parses `--workers a,b,c` into a trimmed, non-empty address list.
fn take_workers(args: &mut Vec<String>) -> Result<Vec<String>, String> {
    match take_option(args, "--workers")? {
        None => Ok(Vec::new()),
        Some(list) => {
            let workers: Vec<String> =
                list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(Into::into).collect();
            if workers.is_empty() {
                return Err(format!("--workers {list}: no usable addresses"));
            }
            Ok(workers)
        }
    }
}

fn load_spec(arg: &str) -> Result<CampaignSpec, String> {
    match arg {
        "fig2" => Ok(CampaignSpec::fig2()),
        "table1" => Ok(CampaignSpec::table1()),
        "table2" => Ok(CampaignSpec::table2()),
        "table3" => Ok(CampaignSpec::table3()),
        "table6" => Ok(CampaignSpec::table6()),
        "multifault" => Ok(CampaignSpec::multifault()),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading spec {path}: {e}"))?;
            CampaignSpec::from_json_text(&text)
        }
    }
}

/// Pulls `--flag value` out of `args`, if present.
fn take_option(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(format!("{flag} requires a value")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("gd-campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { return Ok(usage()) };
    args.remove(0);
    let store = take_option(&mut args, "--store")?;
    match command.as_str() {
        "run" => {
            let workers = take_workers(&mut args)?;
            let [spec_arg] = args.as_slice() else { return Ok(usage()) };
            let spec = load_spec(spec_arg)?;
            let mut engine = match store {
                Some(dir) => Engine::with_store(dir),
                None => Engine::ephemeral(),
            };
            if !workers.is_empty() {
                let fleet = FleetDispatcher::new(FleetConfig { workers, ..FleetConfig::default() });
                engine = engine.with_dispatcher(Arc::new(fleet));
            }
            let result = engine.run(&spec)?;
            print!("{}", result.text);
            Ok(ExitCode::SUCCESS)
        }
        "key" => {
            let [spec_arg] = args.as_slice() else { return Ok(usage()) };
            let spec = load_spec(spec_arg)?;
            println!("{}", spec.cache_key()?);
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let addr =
                take_option(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7309".to_owned());
            let queue_limit = match take_option(&mut args, "--queue")? {
                None => 16,
                Some(n) => n.parse().map_err(|_| format!("--queue {n}: not a number"))?,
            };
            let client_quota = match take_option(&mut args, "--quota")? {
                None => None,
                Some(n) => Some(n.parse().map_err(|_| format!("--quota {n}: not a number"))?),
            };
            let workers = take_workers(&mut args)?;
            if !args.is_empty() {
                return Ok(usage());
            }
            let config = ServerConfig {
                addr,
                store: store.map(Into::into),
                queue_limit,
                client_quota,
                workers,
                ..ServerConfig::default()
            };
            let server = Server::start(config)?;
            println!("gd-campaign: serving on http://{}", server.addr());
            println!("gd-campaign: GET /metrics for Prometheus metrics, POST /shutdown to stop");
            // The accept thread owns the lifecycle from here; park until
            // a shutdown request lands and the threads wind down.
            server.join()?;
            Ok(ExitCode::SUCCESS)
        }
        "worker" => {
            let addr =
                take_option(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7310".to_owned());
            if !args.is_empty() {
                return Ok(usage());
            }
            let worker = WorkerServer::start(&addr)?;
            println!("gd-campaign: worker on http://{}", worker.addr());
            println!("gd-campaign: POST /shards for leases, POST /shutdown to stop");
            worker.join()?;
            Ok(ExitCode::SUCCESS)
        }
        "chaos" => {
            let schedule = take_option(&mut args, "--schedule")?
                .ok_or("chaos requires --schedule SEED:SITE=RATE,...")?;
            let runs = match take_option(&mut args, "--runs")? {
                None => 3u64,
                Some(n) => n.parse().map_err(|_| format!("--runs {n}: not a number"))?,
            };
            let golden = take_option(&mut args, "--golden")?;
            let attempts = match take_option(&mut args, "--attempts")? {
                None => gd_campaign::engine::DEFAULT_SHARD_ATTEMPTS,
                Some(n) => n.parse().map_err(|_| format!("--attempts {n}: not a number"))?,
            };
            let [spec_arg] = args.as_slice() else { return Ok(usage()) };
            let spec = load_spec(spec_arg)?;
            chaos_soak(&spec, &schedule, runs, attempts, golden.as_deref(), store.as_deref())
        }
        _ => Ok(usage()),
    }
}

/// Runs `spec` under the fault `schedule` `runs` times and asserts
/// every surviving run reproduces the fault-free bytes. See the module
/// docs for the contract.
fn chaos_soak(
    spec: &CampaignSpec,
    schedule: &str,
    runs: u64,
    attempts: u32,
    golden: Option<&str>,
    store: Option<&str>,
) -> Result<ExitCode, String> {
    if runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    let plan = gd_chaos::Plan::parse(schedule)?;

    // The fault-free reference: the golden file when given (the CI
    // contract — chaos must reproduce the *published* artifact), else a
    // fresh run under suppression.
    let expected = match golden {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading golden {path}: {e}"))?
        }
        None => {
            let _off = gd_chaos::suppress();
            Engine::ephemeral().run(spec)?.text
        }
    };

    // Store: reuse the caller's, or a private scratch dir. Checkpoints
    // persist across runs on purpose — rereading them under chaos
    // exercises the torn/corrupt/dropped *read* recovery paths — but the
    // finished-campaign cache entry is removed before every run so each
    // run actually merges and renders instead of replaying bytes.
    let store_dir = match store {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("gd-campaign-chaos-{}", std::process::id())),
    };
    let cache_file = store_dir.join("cache").join(format!("{}.json", spec.cache_key()?));

    // Injected shard panics are expected noise: keep their default
    // panic-hook stack traces off the terminal, but let anything
    // unexpected print as usual.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with(gd_chaos::PANIC_PREFIX));
        if !injected {
            default_hook(info);
        }
    }));

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut mismatched = 0u64;
    for run in 0..runs {
        let _ = std::fs::remove_file(&cache_file);
        // Re-seed per run so each run draws a different fault pattern
        // from the same schedule.
        let run_plan = plan.with_seed(plan.seed().wrapping_add(run));
        let outcome = {
            let _chaos = gd_chaos::activate(run_plan);
            Engine::with_store(&store_dir).with_shard_attempts(attempts).run(spec)
        };
        match outcome {
            Ok(result) if result.text == expected => {
                ok += 1;
                eprintln!("gd-campaign: chaos run {}/{runs}: ok (bit-identical)", run + 1);
            }
            Ok(_) => {
                mismatched += 1;
                eprintln!("gd-campaign: chaos run {}/{runs}: OUTPUT MISMATCH", run + 1);
            }
            Err(e) => {
                failed += 1;
                eprintln!("gd-campaign: chaos run {}/{runs}: failed: {e}", run + 1);
            }
        }
    }
    let _ = std::panic::take_hook();
    if store.is_none() {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    println!(
        "gd-campaign: chaos soak: {ok} ok, {failed} failed, {mismatched} mismatched \
         over {runs} runs (schedule {schedule})"
    );
    if mismatched > 0 {
        Err(format!("{mismatched} surviving run(s) diverged from the fault-free bytes"))
    } else if ok == 0 {
        Err("no run survived the schedule (raise the retry budget or lower the rates)".into())
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
