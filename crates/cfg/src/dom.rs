//! Intraprocedural dominator and post-dominator trees over the
//! recovered CFG, computed per routine with the iterative
//! Cooper–Harvey–Kennedy algorithm.

use crate::graph::{Cfg, EdgeKind};

/// A dominator (or post-dominator) tree over one routine's blocks,
/// indexed by *local* block ids (positions in [`Routine::blocks`]).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per local block (`None` for the root and for
    /// unreachable blocks).
    pub idom: Vec<Option<usize>>,
    /// The root's local id.
    pub root: usize,
}

impl DomTree {
    /// Whether local block `a` dominates local block `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Depth of `b` in the tree (`None` if unreachable).
    fn depth(&self, b: usize) -> Option<usize> {
        let mut d = 0;
        let mut cur = b;
        while cur != self.root {
            cur = self.idom[cur]?;
            d += 1;
        }
        Some(d)
    }

    /// Maximum tree depth over reachable blocks.
    pub fn height(&self) -> usize {
        (0..self.idom.len()).filter_map(|b| self.depth(b)).max().unwrap_or(0)
    }
}

/// One routine's intraprocedural subgraph: local ids onto global blocks.
#[derive(Debug, Clone)]
pub struct Routine {
    /// Routine name (from the extent table).
    pub name: String,
    /// Global block indices, ascending.
    pub blocks: Vec<usize>,
    /// Local id of the entry block, when the extent base was decoded.
    pub entry: Option<usize>,
    /// Local successor lists (intra edges only).
    pub succs: Vec<Vec<usize>>,
}

impl Routine {
    /// Local id of global block `g`.
    pub fn local(&self, g: usize) -> Option<usize> {
        self.blocks.binary_search(&g).ok()
    }

    /// Number of intraprocedural edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Dominator tree from the routine entry, or `None` without one.
    pub fn dominators(&self) -> Option<DomTree> {
        let entry = self.entry?;
        Some(dominator_tree(self.blocks.len(), entry, &self.succs))
    }

    /// Post-dominator tree toward a virtual exit collecting every block
    /// with no intraprocedural successor.
    pub fn post_dominators(&self) -> DomTree {
        let n = self.blocks.len();
        // Virtual exit gets local id `n`.
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (from, out) in self.succs.iter().enumerate() {
            if out.is_empty() {
                rsuccs[n].push(from);
            }
            for &to in out {
                rsuccs[to].push(from);
            }
        }
        dominator_tree(n + 1, n, &rsuccs)
    }

    /// Back edges (`u → v` where `v` dominates `u`): natural loops.
    pub fn back_edges(&self) -> usize {
        let Some(dom) = self.dominators() else { return 0 };
        self.succs
            .iter()
            .enumerate()
            .map(|(u, out)| out.iter().filter(|&&v| dom.dominates(v, u)).count())
            .sum()
    }
}

/// Groups blocks into routines by the extent containing their start and
/// builds each routine's intraprocedural subgraph. `CallReturn` edges
/// are local flow; `Call` edges are not.
pub fn routines(g: &Cfg, image: &gd_backend::FirmwareImage) -> Vec<Routine> {
    let mut out = Vec::new();
    for e in &image.extents {
        let blocks: Vec<usize> = g
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.start >= e.base && b.start < e.end)
            .map(|(i, _)| i)
            .collect();
        if blocks.is_empty() {
            continue;
        }
        let succs = blocks
            .iter()
            .map(|&b| {
                g.succs[b]
                    .iter()
                    .filter(|&&(_, kind)| kind != EdgeKind::Call)
                    .filter_map(|&(t, _)| blocks.binary_search(&t).ok())
                    .collect()
            })
            .collect();
        let entry = g.index.get(&e.base).and_then(|&b| blocks.binary_search(&b).ok());
        out.push(Routine { name: e.name.clone(), blocks, entry, succs });
    }
    out
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy) over an
/// arbitrary successor list, rooted at `root`.
fn dominator_tree(n: usize, root: usize, succs: &[Vec<usize>]) -> DomTree {
    // Reverse postorder from the root.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 new, 1 open, 2 done
    let mut stack = vec![(root, 0usize)];
    state[root] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        if *i < succs[b].len() {
            let t = succs[b][*i];
            *i += 1;
            if state[t] == 0 {
                state[t] = 1;
                stack.push((t, 0));
            }
        } else {
            state[b] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    let rpo_num: Vec<Option<usize>> = {
        let mut v = vec![None; n];
        for (i, &b) in order.iter().enumerate() {
            v[b] = Some(i);
        }
        v
    };
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, out) in succs.iter().enumerate() {
        for &to in out {
            preds[to].push(from);
        }
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].expect("processed nodes have idoms");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed nodes have idoms");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom[root] = None; // the root has no immediate dominator
    DomTree { idom, root }
}
