//! Property tests for the dependency-free JSON codec, built on the
//! workspace's deterministic [`gd_exec::check`] harness: serialize →
//! parse round-trips over randomly generated documents, plus adversarial
//! inputs (truncations, mutations, malformed structures) that must
//! return errors — never panic, never loop.

use gd_campaign::json::{parse, Json};
use gd_campaign::spec::{CampaignSpec, ModelSpec, Workload};
use gd_exec::check::{cases, Rng};

/// A random JSON document of bounded depth. Leans on every variant:
/// exact integers at the u64/i64 extremes, shortest-round-trip floats,
/// strings with escapes and non-ASCII, nested arrays and objects.
fn random_json(rng: &mut Rng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.usize(0, if leaf_only { 5 } else { 7 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.bool()),
        2 => match rng.usize(0, 4) {
            0 => Json::Int(rng.i64().into()),
            1 => Json::Int(u64::MAX.into()),
            2 => Json::Int(i128::from(i64::MIN)),
            _ => Json::Int(rng.range(0, 1 << 53).into()),
        },
        3 => {
            // Finite doubles only (the serializer rejects NaN/inf); build
            // from small parts so interesting exponents appear.
            let mantissa = rng.i64() >> rng.usize(0, 48);
            let exp = rng.usize(0, 61) as i32 - 30;
            Json::Num(mantissa as f64 * 2f64.powi(exp))
        }
        4 => Json::Str(random_string(rng)),
        5 => Json::Arr(rng.vec(0, 5, |r| random_json(r, depth - 1))),
        _ => {
            // Objects need distinct keys — the parser rejects duplicates.
            let n = rng.usize(0, 5);
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}_{}", random_string(rng)), random_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn random_string(rng: &mut Rng) -> String {
    let pool: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\t',
        '\u{0}',
        '\u{7f}',
        'é',
        '§',
        '🧪',
        '\u{10FFFF}',
    ];
    rng.vec(0, 8, |r| *r.choose(pool)).into_iter().collect()
}

#[test]
fn compact_serialization_round_trips() {
    cases(256, "compact round-trip", |rng| {
        let doc = random_json(rng, 4);
        let text = doc.to_string_compact().expect("finite documents serialize");
        let back = parse(&text).unwrap_or_else(|e| panic!("reparsing {text:?}: {e}"));
        assert_eq!(back, doc, "through {text:?}");
    });
}

#[test]
fn pretty_serialization_round_trips() {
    cases(256, "pretty round-trip", |rng| {
        let doc = random_json(rng, 3);
        let text = doc.to_string_pretty().expect("finite documents serialize");
        let back = parse(&text).unwrap_or_else(|e| panic!("reparsing {text:?}: {e}"));
        assert_eq!(back, doc, "through {text:?}");
    });
}

#[test]
fn truncated_documents_never_panic() {
    cases(512, "truncation safety", |rng| {
        let doc = random_json(rng, 3);
        let text = doc.to_string_compact().expect("serializes");
        let mut cut = rng.usize(0, text.len() + 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        // A prefix may still be valid JSON ("12" from "123"); the
        // property under test is absence of panics and hangs, with the
        // harness converting any panic into a named failing case.
        let _ = parse(&text[..cut]);
    });
}

#[test]
fn mutated_documents_never_panic() {
    cases(512, "mutation safety", |rng| {
        let doc = random_json(rng, 3);
        let mut bytes = doc.to_string_compact().expect("serializes").into_bytes();
        if bytes.is_empty() {
            return;
        }
        for _ in 0..rng.usize(1, 4) {
            let i = rng.usize(0, bytes.len());
            bytes[i] = rng.u8();
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse(&text);
        }
    });
}

#[test]
fn adversarial_inputs_error_cleanly() {
    // The public-API complement of the unit suite inside the codec:
    // truncated structures, bad escapes, duplicate keys, and pathological
    // nesting all surface as errors with positions, not panics.
    for text in [
        "",
        "{",
        "[1, 2",
        "\"unterminated",
        "{\"a\":}",
        "{\"a\":1,\"a\":2}",
        "{\"nested\":{\"a\":1,\"a\":2}}",
        "\"bad \\x escape\"",
        "\"lone surrogate \\ud800\"",
        "[1] trailing",
        "nul\u{0}l",
        "1e999999",
    ] {
        let err = parse(text).expect_err(text);
        let _ = err.to_string();
    }
    let deep = "[".repeat(200_000);
    assert!(parse(&deep).is_err(), "unclosed deep nesting errors");
    let deep_closed = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(parse(&deep_closed).is_err(), "depth cap holds even for balanced nesting");
}

/// Random-but-valid campaign specs round-trip through the codec, and the
/// cache key is invariant under re-serialization.
#[test]
fn campaign_specs_round_trip() {
    cases(128, "spec round-trip", |rng| {
        let workload = match rng.usize(0, 5) {
            0 => Workload::Fig2,
            1 => {
                let lo = rng.range(0, 8) as u32;
                Workload::Table1 { cycles: (lo, lo + 1 + rng.range(0, 8) as u32) }
            }
            2 => {
                let lo = rng.range(0, 8) as u32;
                Workload::Table2 { cycles: (lo, lo + 1 + rng.range(0, 8) as u32) }
            }
            3 => {
                let lo = rng.range(1, 30) as u32;
                Workload::Table3 { lens: (lo, lo + 1 + rng.range(0, 10) as u32) }
            }
            _ => Workload::Table6,
        };
        let spec = CampaignSpec {
            workload,
            model: ModelSpec {
                seed: rng.u64(),
                peak_fault_rate: rng.range(0, 1000) as f64 / 1000.0,
                bit_clear_min: rng.range(0, 500) as f64 / 1000.0,
                bit_clear_span: rng.range(0, 500) as f64 / 1000.0,
            },
            threads: if rng.bool() { Some(rng.range(1, 64) as u32) } else { None },
            shards: if rng.bool() {
                let lo = rng.range(0, 10) as u32;
                Some((lo, lo + 1 + rng.range(0, 10) as u32))
            } else {
                None
            },
        };
        let text = spec.to_json_text().expect("specs serialize");
        let back = CampaignSpec::from_json_text(&text)
            .unwrap_or_else(|e| panic!("reparsing spec {text}: {e}"));
        assert_eq!(back, spec, "through {text}");
    });
}
