//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`] — just enough
//! protocol for the campaign service and its tests, with hard limits on
//! header and body sizes. One request per connection (`Connection:
//! close` semantics); no chunked encoding, no keep-alive, no TLS.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body bytes (campaign specs are small).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string split off (`/campaigns/3`).
    pub path: String,
    /// Raw query string after `?`, or empty.
    pub query: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns a message suitable for a 400 response: malformed request
/// line, over-limit head or body, or an unreadable socket.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; BufReader keeps this cheap.
    while !head.ends_with(b"\r\n\r\n") {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-header".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("reading request head: {e}")),
        }
        if head.len() > MAX_HEAD {
            return Err("request head exceeds limit".into());
        }
    }
    let head = String::from_utf8(head).map_err(|_| "request head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_uppercase();
    let target = parts.next().ok_or("request line lacks a path")?;
    let version = parts.next().ok_or("request line lacks a version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        headers.push((name.trim().to_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request { method, path, query, headers, body: Vec::new() };
    if let Some(len) = request.header("content-length") {
        let len: usize = len.parse().map_err(|_| "bad Content-Length")?;
        if len > MAX_BODY {
            return Err("request body exceeds limit".into());
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| format!("reading body: {e}"))?;
        request.body = body;
    }
    Ok(request)
}

/// Writes a complete response and flushes. Errors are returned for the
/// caller to log; the connection is closed either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A one-shot client request (the test harness and the CLI use this;
/// no external HTTP client exists in the workspace).
///
/// # Errors
///
/// Returns a message on connection failure or a malformed response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("sending request: {e}"))?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("reading status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("reading headers: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).map_err(|e| format!("reading body: {e}"))?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf).map_err(|e| format!("reading body: {e}"))?;
            buf
        }
    };
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips a request through a real socket pair: the client side
    /// uses [`request`], the server side [`read_request`] +
    /// [`write_response`].
    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/campaigns");
            assert_eq!(req.query, "format=text");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(&mut stream, 202, "application/json", b"{\"id\":7}").unwrap();
        });
        let (status, body) =
            request(&addr, "POST", "/campaigns?format=text", Some("{\"x\":1}")).unwrap();
        server.join().unwrap();
        assert_eq!((status, body.as_str()), (202, "{\"id\":7}"));
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for raw in
            ["\r\n\r\n", "GET\r\n\r\n", "GET / SPDY/3\r\n\r\n", "GET / HTTP/1.1\r\nbad\r\n\r\n"]
        {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(raw.as_bytes()).unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream).is_err(), "{raw:?} must be rejected");
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        write!(client, "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
