//! # gd-exec — scoped-thread fan-out for embarrassingly parallel sweeps
//!
//! The paper's experiments are dominated by exhaustive loops over
//! independent trials: 2¹⁶ perturbed executions per instruction (§IV,
//! Figure 2) and 99×99 glitch-parameter grids per cycle (§V, Tables
//! I–III). Every trial boots a fresh emulator, so the work partitions
//! trivially — the same scaling observation behind ARMORY's parallel
//! fault workers. This crate provides that partitioning with zero
//! external dependencies, built on [`std::thread::scope`].
//!
//! Guarantees:
//!
//! * **Deterministic, input-ordered merging** — results come back in the
//!   order of the input slice, regardless of which worker ran what, so
//!   parallel output is bit-for-bit identical to serial output whenever
//!   the per-item work is pure.
//! * **Bounded workers** — the worker count comes from the `GD_THREADS`
//!   environment variable, defaulting to
//!   [`std::thread::available_parallelism`]. An invalid value (zero or
//!   non-numeric) is rejected loudly instead of silently falling back —
//!   a typo'd `GD_THREADS=O1` must not quietly change the worker count.
//!   `GD_THREADS=1` (or a single chunk) short-circuits to a plain serial
//!   loop on the caller's thread, and [`with_threads`] pins the count
//!   programmatically for a scope (the campaign engine uses this for
//!   per-spec thread overrides).
//! * **Panic propagation that names the failing chunk** — a panicking
//!   worker aborts the fan-out and the panic is re-raised on the caller
//!   with the chunk index and item range attached.
//! * **No nested fan-out** — a call made from inside a worker runs
//!   serially, so layered drivers (a parallel table driver calling a
//!   parallel scan) degrade gracefully instead of oversubscribing.
//!
//! ```
//! let squares = gd_exec::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let sums = gd_exec::par_map_chunks(&[1u64, 2, 3, 4, 5], 2, |c| {
//!     c.items.iter().sum::<u64>()
//! });
//! assert_eq!(sums, vec![3, 7, 5]); // one result per chunk, input order
//! ```
//!
//! The crate also hosts [`check`], the deterministic property-test
//! harness the workspace uses instead of an external `proptest`
//! dependency (the repository must build fully offline).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod check;

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use gd_obs::Timer;

/// `gd_obs` handles for the fan-out hot path, registered once (the
/// per-chunk cost is a relaxed atomic add).
struct ExecMetrics {
    /// `gd_exec_chunks_executed_total`
    chunks: Arc<gd_obs::Counter>,
    /// `gd_exec_serial_fallbacks_total`
    serial_fallbacks: Arc<gd_obs::Counter>,
    /// `gd_exec_worker_busy_us_total`
    busy_us: Arc<gd_obs::Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ExecMetrics {
        chunks: gd_obs::counter(
            "gd_exec_chunks_executed_total",
            "chunks executed by par_map_chunks, serial or parallel",
            &[],
        ),
        serial_fallbacks: gd_obs::counter(
            "gd_exec_serial_fallbacks_total",
            "par_map_chunks calls that ran serially (one worker, one chunk, or nested fan-out)",
            &[],
        ),
        busy_us: gd_obs::counter(
            "gd_exec_worker_busy_us_total",
            "microseconds fan-out workers (or the serial path) spent executing chunks",
            &[],
        ),
    })
}

thread_local! {
    /// Set inside fan-out workers so nested calls stay serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped programmatic worker-count override (see [`with_threads`]).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Validates a `GD_THREADS` value: a positive integer worker count.
///
/// # Errors
///
/// Returns a message naming the offending value when it is zero, empty,
/// or not an integer.
pub fn parse_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err("GD_THREADS must be a positive integer, got 0".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("GD_THREADS must be a positive integer, got {value:?}")),
    }
}

/// The worker count used by [`par_map_chunks`]: the innermost
/// [`with_threads`] override if one is active, else `GD_THREADS`, else
/// [`std::thread::available_parallelism`] (1 if even that is unavailable).
///
/// # Panics
///
/// Panics when `GD_THREADS` is set but invalid (zero or non-numeric):
/// a mistyped thread count must surface, not silently change the worker
/// pool. Validate user input up front with [`parse_threads`].
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    match std::env::var("GD_THREADS") {
        Ok(v) => match parse_threads(&v) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        },
        Err(_) => default_threads(),
    }
}

/// Runs `f` with the worker count pinned to `n` on this thread, ignoring
/// `GD_THREADS`. The override is scoped (restored even on unwind) and
/// thread-local: fan-outs started by `f` use `n` workers, unrelated
/// threads are unaffected.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_threads requires a positive worker count");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Runs `f` with every nested fan-out forced onto this thread, exactly
/// as if `f` were already executing inside a [`par_map_chunks`] worker.
/// The scope is restored even on unwind.
///
/// Remote shard executors use this: a worker process serving several
/// concurrent shard leases gets its parallelism from the leases
/// themselves, so the sweeps *inside* each shard must not multiply the
/// thread count again.
pub fn serialized<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _guard = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

fn default_threads() -> usize {
    thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// One contiguous piece of the input slice handed to a chunk closure.
#[derive(Debug)]
pub struct Chunk<'a, T> {
    /// Index of `items[0]` within the original input slice.
    pub start: usize,
    /// The items of this chunk, in input order.
    pub items: &'a [T],
}

/// Maps `f` over `items` in chunks of `chunk_size`, in parallel, and
/// returns one result per chunk **in input order**.
///
/// The merge is deterministic: chunk `i` always covers
/// `items[i * chunk_size ..]` and its result always lands at index `i`,
/// so callers that fold the results associatively (tally counts, cell
/// merges) obtain output identical to a serial run.
///
/// Runs serially on the caller's thread when only one worker is
/// available ([`threads`] = 1, a single chunk, or a call from inside
/// another fan-out).
///
/// # Panics
///
/// Panics if `chunk_size == 0`, or if `f` panics — the panic is
/// propagated to the caller with the failing chunk named.
pub fn par_map_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&Chunk<'_, T>) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let workers = threads().min(n_chunks);
    let metrics = exec_metrics();
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        metrics.serial_fallbacks.inc();
        let timer = Timer::start();
        let out = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| {
                // Chaos sites fire on the serial path too; the injected
                // panic propagates to the caller like any chunk panic.
                gd_chaos::chunk_started(i);
                f(&Chunk { start: i * chunk_size, items: c })
            })
            .collect();
        metrics.chunks.add(n_chunks as u64);
        metrics.busy_us.add(timer.elapsed_us());
        return out;
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

    // Each worker pulls chunk indices from the shared counter and keeps
    // its results tagged with their chunk index; the merge below restores
    // input order regardless of scheduling.
    let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    // Workers never idle — they pull chunks until the
                    // counter is exhausted and exit — so lifetime is
                    // busy-time.
                    let timer = Timer::start();
                    let mut executed = 0u64;
                    let mut out = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        let start = i * chunk_size;
                        let end = (start + chunk_size).min(items.len());
                        let chunk = Chunk { start, items: &items[start..end] };
                        // `gd_chaos::chunk_started` sits inside the
                        // catch region: an injected worker panic takes
                        // exactly the path a real `f` panic would.
                        match catch_unwind(AssertUnwindSafe(|| {
                            gd_chaos::chunk_started(i);
                            f(&chunk)
                        })) {
                            Ok(r) => {
                                executed += 1;
                                out.push((i, r));
                            }
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                let mut slot = failure.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some((i, payload));
                                }
                                break;
                            }
                        }
                    }
                    metrics.chunks.add(executed);
                    metrics.busy_us.add(timer.elapsed_us());
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught via catch_unwind"))
            .collect()
    });

    if let Some((i, payload)) = failure.into_inner().unwrap() {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(items.len());
        gd_obs::error!(
            "gd_exec",
            "chunk panicked; propagating",
            chunk = i,
            items = format_args!("{start}..{end}"),
        );
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "chunk {i} produced twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("every chunk ran exactly once")).collect()
}

/// Maps `f` over each item of `items` in parallel, returning the results
/// in input order. Chunking is automatic (a few chunks per worker, so a
/// slow item cannot stall the tail).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_size = items.len().div_ceil(threads().saturating_mul(4).max(1)).max(1);
    par_map_chunks(items, chunk_size, |c| c.items.iter().map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `GD_THREADS` is process-global; tests that mutate it serialize here.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Serial reference for the differential assertions below.
    fn serial_map_chunks<T, R>(
        items: &[T],
        chunk_size: usize,
        f: impl Fn(&Chunk<'_, T>) -> R,
    ) -> Vec<R> {
        items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| f(&Chunk { start: i * chunk_size, items: c }))
            .collect()
    }

    #[test]
    fn results_are_input_ordered() {
        let items: Vec<u32> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2 + 1);
        let expect: Vec<u32> = items.iter().map(|&x| x * 2 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[], |&x: &u32| x);
        assert!(out.is_empty());
        let out: Vec<u64> = par_map_chunks(&[] as &[u32], 8, |c| c.items.len() as u64);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_boundaries_partition_exactly() {
        for len in [1usize, 2, 7, 8, 9, 63, 64, 65, 1000] {
            for chunk in [1usize, 2, 3, 8, 64, 1024] {
                let items: Vec<usize> = (0..len).collect();
                let spans = par_map_chunks(&items, chunk, |c| (c.start, c.items.to_vec()));
                // Chunks tile the input: starts stride by chunk, contents
                // concatenate back to the original slice.
                let mut rebuilt = Vec::new();
                for (i, (start, body)) in spans.iter().enumerate() {
                    assert_eq!(*start, i * chunk, "len={len} chunk={chunk}");
                    assert!(body.len() <= chunk);
                    rebuilt.extend_from_slice(body);
                }
                assert_eq!(rebuilt, items, "len={len} chunk={chunk}");
            }
        }
    }

    #[test]
    fn matches_serial_reference_for_chunked_sums() {
        let items: Vec<u64> = (0..4_099).map(|x| x * 37 % 1_013).collect();
        let f = |c: &Chunk<'_, u64>| (c.start as u64) ^ c.items.iter().sum::<u64>();
        assert_eq!(par_map_chunks(&items, 128, f), serial_map_chunks(&items, 128, f));
    }

    #[test]
    fn gd_threads_one_is_equivalent() {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("GD_THREADS").ok();
        std::env::set_var("GD_THREADS", "1");
        let items: Vec<u32> = (0..513).collect();
        let out = par_map(&items, |&x| x.wrapping_mul(2_654_435_761));
        match saved {
            Some(v) => std::env::set_var("GD_THREADS", v),
            None => std::env::remove_var("GD_THREADS"),
        }
        let expect: Vec<u32> = items.iter().map(|&x| x.wrapping_mul(2_654_435_761)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn threads_parses_env_var() {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("GD_THREADS").ok();
        std::env::set_var("GD_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("GD_THREADS", " 8 ");
        assert_eq!(threads(), 8, "surrounding whitespace is tolerated");
        match saved {
            Some(v) => std::env::set_var("GD_THREADS", v),
            None => std::env::remove_var("GD_THREADS"),
        }
    }

    #[test]
    fn invalid_gd_threads_is_rejected_loudly() {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("GD_THREADS").ok();
        for bad in ["0", "not-a-number", "", "-2", "1.5"] {
            std::env::set_var("GD_THREADS", bad);
            let result = catch_unwind(threads);
            let payload = result.expect_err(&format!("GD_THREADS={bad:?} must be rejected"));
            let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("GD_THREADS must be a positive integer"),
                "error names the variable and the constraint: {msg}"
            );
        }
        match saved {
            Some(v) => std::env::set_var("GD_THREADS", v),
            None => std::env::remove_var("GD_THREADS"),
        }
    }

    #[test]
    fn parse_threads_validates() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads("  16\n"), Ok(16));
        for bad in ["0", "", "four", "-1", "3.0", "0x10"] {
            let err = parse_threads(bad).expect_err(bad);
            assert!(err.contains("GD_THREADS"), "{err}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("GD_THREADS").ok();
        std::env::set_var("GD_THREADS", "3");
        assert_eq!(threads(), 3);
        let (inner, nested) = with_threads(7, || (threads(), with_threads(2, threads)));
        assert_eq!((inner, nested), (7, 2), "overrides nest innermost-wins");
        assert_eq!(threads(), 3, "the override is scoped");
        // The override beats even an invalid env var (already validated
        // input must not be re-rejected)...
        std::env::set_var("GD_THREADS", "garbage");
        assert_eq!(with_threads(5, threads), 5);
        // ...and is restored on unwind.
        let _ = catch_unwind(|| with_threads(9, || panic!("boom")));
        std::env::set_var("GD_THREADS", "4");
        assert_eq!(threads(), 4, "unwinding clears the override");
        match saved {
            Some(v) => std::env::set_var("GD_THREADS", v),
            None => std::env::remove_var("GD_THREADS"),
        }
    }

    #[test]
    fn serialized_scopes_force_and_restore_the_serial_path() {
        let _guard = ENV_LOCK.lock().unwrap();
        let metrics = exec_metrics();
        let serial0 = metrics.serial_fallbacks.get();
        let items: Vec<u32> = (0..64).collect();
        let out = serialized(|| with_threads(8, || par_map(&items, |&x| x + 1)));
        assert_eq!(out, (1..=64).collect::<Vec<u32>>(), "results are unchanged");
        assert!(
            metrics.serial_fallbacks.get() > serial0,
            "the fan-out inside a serialized scope ran serially"
        );
        // The scope is restored, even on unwind.
        let _ = catch_unwind(|| serialized(|| panic!("boom")));
        let serial1 = metrics.serial_fallbacks.get();
        let parallel = with_threads(2, || par_map_chunks(&items, 8, |c| c.items.len()));
        assert_eq!(parallel.iter().sum::<usize>(), 64);
        assert_eq!(metrics.serial_fallbacks.get(), serial1, "back on the parallel path");
    }

    #[test]
    fn panic_propagates_to_caller() {
        let items: Vec<u32> = (0..1_000).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 777 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 777"), "original payload survives: {msg}");
    }

    #[test]
    fn nested_calls_run_serially_and_correctly() {
        let outer: Vec<u32> = (0..16).collect();
        let out = par_map(&outer, |&x| {
            let inner: Vec<u32> = (0..x + 1).collect();
            par_map(&inner, |&y| y + 1).into_iter().sum::<u32>()
        });
        let expect: Vec<u32> = outer.iter().map(|&x| (x + 1) * (x + 2) / 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fan_out_metrics_accumulate() {
        let _guard = ENV_LOCK.lock().unwrap();
        let metrics = exec_metrics();
        let (chunks0, serial0) = (metrics.chunks.get(), metrics.serial_fallbacks.get());
        let items: Vec<u32> = (0..64).collect();
        // Parallel: 8 chunks across 2 workers, all counted.
        let _ = with_threads(2, || par_map_chunks(&items, 8, |c| c.items.len()));
        assert!(metrics.chunks.get() >= chunks0 + 8, "parallel chunks counted");
        // Serial fallback: one worker, same chunk count.
        let _ = with_threads(1, || par_map_chunks(&items, 8, |c| c.items.len()));
        assert!(metrics.serial_fallbacks.get() >= serial0 + 1, "serial fallback counted");
        assert!(metrics.chunks.get() >= chunks0 + 16, "serial chunks counted too");
        // Busy-time is timing-dependent; the counter only has to exist
        // and be monotone (it may legitimately read 0 µs here).
        let busy = metrics.busy_us.get();
        let _ = with_threads(2, || par_map_chunks(&items, 8, |c| c.items.len()));
        assert!(metrics.busy_us.get() >= busy);
    }

    #[test]
    fn many_more_chunks_than_workers() {
        let items: Vec<u64> = (0..10_007).collect();
        let sums = par_map_chunks(&items, 3, |c| c.items.iter().sum::<u64>());
        assert_eq!(sums.len(), 10_007usize.div_ceil(3));
        assert_eq!(sums.iter().sum::<u64>(), 10_006 * 10_007 / 2);
    }
}
