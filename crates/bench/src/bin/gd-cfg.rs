//! The CFG-recovery and glitch-reachability driver.
//!
//! - no arguments: the boot report (recovery summaries, `GL03xx`
//!   findings, agreement tables) — the `results/cfg_boot.txt` artifact.
//! - `--ingest`: the same over the committed demo dump —
//!   `results/cfg_ingest.txt`.
//! - `--check`: diff both regenerated artifacts against their committed
//!   goldens.
//! - `--gate`: re-run the agreement sweeps (boot `None` + `All`, ingest
//!   demo) and exit non-zero if any simulator-proved-Successful fault
//!   was classified statically safe — the soundness gate.
//! - `--deny [LINT] [--config NAME]`: run the `GL03xx` lints on one
//!   boot configuration (default `All`) and exit non-zero on any
//!   warning-or-worse finding — or, with a lint id (`--deny GL0302`),
//!   on any finding of that lint regardless of severity.
//!
//! Output is byte-identical at any `GD_THREADS`.

use std::process::ExitCode;

use gd_bench::cfg_report::{
    analyze_boot, boot_agreement, cfg_boot, full_report, ingest_agreement, ingest_report,
};
use gd_bench::overhead::configurations;
use gd_lint::{LintReport, Severity, Suppressions};
use glitch_resistor::Defenses;

fn find_config(name: &str) -> Option<(&'static str, Defenses)> {
    configurations().into_iter().find(|(n, _)| *n == name)
}

fn record_metrics(label: &str, defenses: Defenses) {
    let a = analyze_boot(defenses);
    gd_cfg::metrics::record(&a.g, label);
}

fn gate() -> ExitCode {
    let mut unsound = 0u64;
    for (name, defenses) in [("None", Defenses::NONE), ("All", Defenses::ALL)] {
        let a = boot_agreement(name, defenses);
        print!("{}", a.rendered);
        unsound += a.total.unsound;
    }
    let a = ingest_agreement();
    print!("{}", a.rendered);
    unsound += a.total.unsound;
    if unsound > 0 {
        eprintln!(
            "gd-cfg: soundness gate FAILED: {unsound} simulator-proved-Successful \
             fault(s) were classified statically safe"
        );
        return ExitCode::FAILURE;
    }
    println!("soundness gate OK: 0 unsound instances across boot None/All and the ingest demo");
    ExitCode::SUCCESS
}

fn deny(args: &[String]) -> ExitCode {
    let mut config = "All";
    let mut lint: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => {}
            "--config" => match it.next().and_then(|n| find_config(n)) {
                Some((name, _)) => config = name,
                None => {
                    eprintln!(
                        "--config wants one of: {:?}",
                        configurations().iter().map(|(n, _)| *n).collect::<Vec<_>>()
                    );
                    return ExitCode::FAILURE;
                }
            },
            id if id.starts_with("GL") => lint = Some(id),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (_, defenses) = find_config(config).expect("validated above");
    let (findings, rendered) = cfg_boot(config, defenses);
    print!("{rendered}");
    let report = LintReport::new(findings, &Suppressions::default());
    let denied = match lint {
        // Scoped to one lint: any finding of that lint denies,
        // regardless of severity.
        Some(id) => {
            let n = report.findings().iter().filter(|f| f.lint == id).count();
            if n > 0 {
                eprintln!("gd-cfg: denying: {n} {id} finding(s) on configuration `{config}`");
            }
            n > 0
        }
        None => {
            let denied = report.deny();
            if denied {
                eprintln!(
                    "gd-cfg: denying: {} warning-or-worse GL03xx finding(s) on configuration `{config}`",
                    report.findings().iter().filter(|f| f.severity >= Severity::Warning).count()
                );
            }
            denied
        }
    };
    if denied {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--deny") {
        return deny(&args);
    }
    match args.first().map(String::as_str) {
        None => {
            record_metrics("boot", Defenses::NONE);
            print!("{}", full_report());
            ExitCode::SUCCESS
        }
        Some("--ingest") => {
            let ing = gd_bench::cfg_report::ingest_demo();
            let a = gd_bench::cfg_report::analyze_ingest(&ing);
            gd_cfg::metrics::record(&a.g, "ingest_demo");
            print!("{}", ingest_report());
            ExitCode::SUCCESS
        }
        Some("--gate") => gate(),
        Some("--check") => {
            let mut code = ExitCode::SUCCESS;
            for (golden, regen_args) in
                [("cfg_boot.txt", &[][..]), ("cfg_ingest.txt", &["--ingest"][..])]
            {
                if gd_bench::selfcheck::check(golden, regen_args) != ExitCode::SUCCESS {
                    code = ExitCode::FAILURE;
                }
            }
            code
        }
        Some(other) => {
            eprintln!("unknown argument `{other}` (try --ingest, --check, --gate, --deny)");
            ExitCode::FAILURE
        }
    }
}
