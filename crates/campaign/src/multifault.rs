//! The multifault workload's campaign-side glue: strict-JSON mappings
//! for the `gd-faultsim` typed fault spaces (so fault instances and the
//! registry inventory travel through the same codec as specs and shard
//! results) and the renderer for the `multifault_boot` report.

use gd_emu::{InjectKind, LoadOverride, Persistence};
use gd_faultsim::{FaultInstance, Registry, SCOPE_FUNCS};
use gd_glitch_emu::{Outcome, Tally};

use crate::json::Json;
use crate::shards::{ShardResult, ShardWork};

/// One concrete fault as a self-describing JSON value:
/// `{"site": .., "kind": .., "persistence": ..}` with the kind split
/// into its own tagged object. Insertion order is fixed, so the
/// serialization is canonical.
pub fn fault_to_json(f: &FaultInstance) -> Json {
    let kind = match f.kind {
        InjectKind::Corrupt { hw } => {
            Json::obj(vec![("kind", Json::Str("corrupt".into())), ("hw", Json::Int(hw.into()))])
        }
        InjectKind::Skip => Json::obj(vec![("kind", Json::Str("skip".into()))]),
        InjectKind::LoadBus(over) => {
            let (op, value) = match over {
                LoadOverride::Replace(v) => ("replace", v),
                LoadOverride::And(v) => ("and", v),
                LoadOverride::Or(v) => ("or", v),
            };
            Json::obj(vec![
                ("kind", Json::Str("bus".into())),
                ("op", Json::Str(op.into())),
                ("value", Json::Int(value.into())),
            ])
        }
    };
    let persistence = match f.persistence {
        Persistence::Transient => "transient",
        Persistence::Permanent => "permanent",
    };
    Json::obj(vec![
        ("site", Json::Int(f.site.into())),
        ("kind", kind),
        ("persistence", Json::Str(persistence.into())),
    ])
}

/// Parses a fault instance back from [`fault_to_json`] output.
///
/// # Errors
///
/// Returns a message naming the missing or ill-typed field.
pub fn fault_from_json(v: &Json) -> Result<FaultInstance, String> {
    let u32_field = |obj: &Json, name: &str| {
        obj.get(name)
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("fault: field `{name}` must be a u32"))
    };
    let site = u32_field(v, "site")?;
    let k = v.get("kind").ok_or("fault: missing field `kind`")?;
    let tag = k.get("kind").and_then(Json::as_str).ok_or("fault: missing `kind.kind`")?;
    let kind = match tag {
        "corrupt" => {
            let hw = k
                .get("hw")
                .and_then(Json::as_u64)
                .and_then(|n| u16::try_from(n).ok())
                .ok_or("fault: corrupt kind needs a u16 `hw`")?;
            InjectKind::Corrupt { hw }
        }
        "skip" => InjectKind::Skip,
        "bus" => {
            let value = u32_field(k, "value")?;
            let over = match k.get("op").and_then(Json::as_str) {
                Some("replace") => LoadOverride::Replace(value),
                Some("and") => LoadOverride::And(value),
                Some("or") => LoadOverride::Or(value),
                other => return Err(format!("fault: unknown bus op {other:?}")),
            };
            InjectKind::LoadBus(over)
        }
        other => return Err(format!("fault: unknown kind {other:?}")),
    };
    let persistence = match v.get("persistence").and_then(Json::as_str) {
        Some("transient") => Persistence::Transient,
        Some("permanent") => Persistence::Permanent,
        other => return Err(format!("fault: unknown persistence {other:?}")),
    };
    Ok(FaultInstance { site, kind, persistence })
}

/// The standard registry as a JSON inventory: name and per-site
/// candidate count of each model, in registry order.
pub fn registry_json() -> Json {
    Json::Arr(
        Registry::standard()
            .models()
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("name", Json::Str(m.name().into())),
                    ("candidates_per_site", Json::Int(m.candidates_per_site().into())),
                ])
            })
            .collect(),
    )
}

fn milli(part: u64, whole: u64) -> u64 {
    if whole == 0 {
        0
    } else {
        part * 1000 / whole
    }
}

fn percent_milli(part: u64, whole: u64) -> String {
    let m = milli(part, whole);
    format!("{}.{}%", m / 10, m % 10)
}

fn row(out: &mut String, label: &str, tally: &Tally, enumerated: u64, pruned: u64, simulated: u64) {
    out.push_str(&format!("{label:<10} {enumerated:>10} {simulated:>9} {pruned:>10}"));
    for o in Outcome::ALL {
        let w = o.label().len().max(9);
        out.push_str(&format!("  {:>w$}", tally.count(o)));
    }
    out.push('\n');
}

/// Merges multifault shards — in plan order — into the report text: one
/// order-1 row per fault model, one aggregated order-2 row for the pair
/// buckets, and a totals line with the pruned-fraction in milli-units.
/// Partial campaigns render the rows they completed (pair buckets only
/// aggregate when all of them are present — a partial sum would
/// masquerade as the full pair space).
///
/// # Errors
///
/// Returns a message when a result's variant contradicts its work item.
pub fn render_multifault(shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    let names = Registry::standard().names();
    let mut models: Vec<Option<(Tally, u64, u64, u64)>> = vec![None; names.len()];
    let mut pairs = (Tally::default(), 0u64, 0u64, 0u64);
    let mut buckets = 0u32;
    for (work, result) in shards {
        let (tally, enumerated, pruned, simulated) = match result {
            ShardResult::Multifault { tally, enumerated, pruned, simulated } => {
                (tally, *enumerated, *pruned, *simulated)
            }
            _ => return Err(format!("shard {} carries a result of the wrong type", work.label())),
        };
        match work {
            ShardWork::MultifaultModel { model } => {
                models[*model] = Some((tally.clone(), enumerated, pruned, simulated));
            }
            ShardWork::MultifaultPairs { .. } => {
                pairs.0.merge(tally);
                pairs.1 += enumerated;
                pairs.2 += pruned;
                pairs.3 += simulated;
                buckets += 1;
            }
            _ => return Err(format!("shard {} carries a result of the wrong type", work.label())),
        }
    }
    let mut out = String::new();
    out.push_str(&"-".repeat(60));
    out.push('\n');
    out.push_str(&format!("Multi-fault campaigns — firmware::boot ({})\n", SCOPE_FUNCS.join(", ")));
    out.push_str(&"-".repeat(60));
    out.push('\n');
    let header = {
        let mut h =
            format!("{:<10} {:>10} {:>9} {:>10}", "Model", "Enumerated", "Simulated", "Pruned");
        for o in Outcome::ALL {
            h.push_str(&format!("  {:>9}", o.label()));
        }
        h.push('\n');
        h
    };
    let (mut enumerated, mut pruned, mut simulated) = (0u64, 0u64, 0u64);
    if models.iter().any(Option::is_some) {
        out.push_str("Order 1 — one armed fault per trial\n");
        out.push_str(&header);
        for (name, slot) in names.iter().zip(&models) {
            if let Some((tally, e, p, s)) = slot {
                row(&mut out, name, tally, *e, *p, *s);
                enumerated += e;
                pruned += p;
                simulated += s;
            }
        }
        out.push('\n');
    }
    if buckets == gd_faultsim::O2_BUCKETS {
        out.push_str("Order 2 — distinct-site representative pairs (xor1.t × skip.t)\n");
        out.push_str(&header);
        row(&mut out, "pairs", &pairs.0, pairs.1, pairs.2, pairs.3);
        enumerated += pairs.1;
        pruned += pairs.2;
        simulated += pairs.3;
        out.push('\n');
    }
    out.push_str(&format!(
        "Pruned {pruned} of {enumerated} candidate trials ({} = {} milli); simulated {simulated}\n",
        percent_milli(pruned, enumerated),
        milli(pruned, enumerated),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use gd_exec::check::{cases, Rng};

    use super::*;

    fn random_fault(rng: &mut Rng) -> FaultInstance {
        let kind = match rng.range(0, 5) {
            0 => InjectKind::Corrupt { hw: rng.u16() },
            1 => InjectKind::Skip,
            2 => InjectKind::LoadBus(LoadOverride::Replace(rng.u32())),
            3 => InjectKind::LoadBus(LoadOverride::And(rng.u32())),
            _ => InjectKind::LoadBus(LoadOverride::Or(rng.u32())),
        };
        let persistence = if rng.bool() { Persistence::Transient } else { Persistence::Permanent };
        FaultInstance { site: rng.u32(), kind, persistence }
    }

    #[test]
    fn fault_instances_round_trip_through_the_codec() {
        cases(256, "fault instance JSON round-trip", |rng| {
            let fault = random_fault(rng);
            let text = fault_to_json(&fault).to_string_compact().unwrap();
            let back = fault_from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, fault, "through {text}");
        });
    }

    #[test]
    fn registry_candidates_round_trip_through_the_codec() {
        // Every candidate the registry would enumerate at a plausible
        // site — not just synthetic instances — survives the codec.
        let site = gd_faultsim::SiteInfo {
            addr: 0x0800_0100,
            hw: 0x2001,
            hw2: Some(0xF800),
            instr: gd_thumb::Instr::MovImm { rd: gd_thumb::Reg::R0, imm8: 1 },
            size: 2,
        };
        for model in Registry::standard().models() {
            for fault in model.candidates_at(&site) {
                let text = fault_to_json(&fault).to_string_compact().unwrap();
                let back = fault_from_json(&crate::json::parse(&text).unwrap()).unwrap();
                assert_eq!(back, fault, "{} through {text}", model.name());
            }
        }
    }

    #[test]
    fn corrupt_fault_json_errors_cleanly() {
        for text in [
            r#"{"kind":{"kind":"skip"},"persistence":"transient"}"#,
            r#"{"site":1,"persistence":"transient"}"#,
            r#"{"site":1,"kind":{"kind":"corrupt","hw":65536},"persistence":"transient"}"#,
            r#"{"site":1,"kind":{"kind":"bus","op":"xor","value":1},"persistence":"transient"}"#,
            r#"{"site":1,"kind":{"kind":"skip"},"persistence":"sticky"}"#,
        ] {
            let v = crate::json::parse(text).unwrap();
            assert!(fault_from_json(&v).is_err(), "{text} must be rejected");
        }
    }

    #[test]
    fn registry_inventory_names_every_model() {
        let v = registry_json();
        let items = v.as_arr().unwrap();
        assert_eq!(items.len(), Registry::standard().len());
        assert_eq!(items[0].get("name").and_then(Json::as_str), Some("xor1.t"));
        assert_eq!(items[0].get("candidates_per_site").and_then(Json::as_u64), Some(16));
    }
}
