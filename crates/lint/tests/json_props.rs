//! Property test: whatever findings the engine holds — including
//! adversarial function names and messages — the JSON renderer's output
//! re-parses under the strict campaign codec with every field intact.

use gd_campaign::json::{parse, Json};
use gd_exec::check::{cases, Rng};
use gd_lint::{Finding, LintReport, Suppressions, CATALOG};

/// Strings that stress the codec's escaping: quotes, backslashes,
/// control characters, non-ASCII, and the `+0x` location shapes the
/// image lints emit.
fn gen_string(rng: &mut Rng) -> String {
    let pieces: &[&str] = &[
        "main",
        "gr_delay",
        "+0x1c",
        "done.gr3",
        "gr.detect7",
        "a\"b",
        "tab\there",
        "new\nline",
        "back\\slash",
        "NUL\u{0}",
        "µ-ctrl",
        "→",
        "",
        "very_long_function_name_with_suffix",
    ];
    rng.vec(1, 4, |r| *r.choose(pieces)).concat()
}

fn gen_finding(rng: &mut Rng) -> Finding {
    let spec = rng.choose(CATALOG);
    Finding::new(spec.id, &gen_string(rng), &gen_string(rng), gen_string(rng))
}

#[test]
fn rendered_json_reparses_with_every_field_intact() {
    cases(96, "lint JSON re-parses under the strict codec", |rng| {
        let findings = rng.vec(0, 12, gen_finding);
        let report = LintReport::new(findings, &Suppressions::default());
        let text = report.render_json();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("codec rejected: {e}\n{text}"));

        // Counts match, for every catalog lint (zeros included).
        for (id, n) in report.counts() {
            let got = parsed.get("counts").and_then(|c| c.get(id)).and_then(Json::as_u64);
            assert_eq!(got, Some(n), "count[{id}]\n{text}");
        }
        // Findings survive field-for-field, in order.
        let arr = parsed.get("findings").and_then(Json::as_arr).expect("findings array");
        assert_eq!(arr.len(), report.findings().len());
        for (json, f) in arr.iter().zip(report.findings()) {
            assert_eq!(json.get("lint").and_then(Json::as_str), Some(f.lint));
            assert_eq!(json.get("severity").and_then(Json::as_str), Some(f.severity.label()));
            assert_eq!(json.get("function").and_then(Json::as_str), Some(f.function.as_str()));
            assert_eq!(json.get("location").and_then(Json::as_str), Some(f.location.as_str()));
            assert_eq!(json.get("message").and_then(Json::as_str), Some(f.message.as_str()));
        }
    });
}
