//! Leveled structured logging: one `key=value` line per event on
//! stderr, filtered by the `GD_LOG` environment variable.
//!
//! `GD_LOG` is a comma-separated list of `level` (the default for all
//! targets) and `target=level` overrides, matched by longest target
//! prefix — e.g. `GD_LOG=warn,gd_exec=trace` silences everything below
//! `warn` except `gd_exec*`, which logs down to `trace`. Levels are
//! `off`, `error`, `warn`, `info` (the default when `GD_LOG` is
//! unset), `debug`, and `trace`.
//!
//! Lines look like:
//!
//! ```text
//! t=152 level=warn target=gd_campaign::engine msg="checkpoint write failed" shard=3
//! ```
//!
//! where `t` is milliseconds since the first log line of the process.
//! Use the [`error!`](crate::error!), [`warn!`](crate::warn!),
//! [`info!`](crate::info!), [`debug!`](crate::debug!), and
//! [`trace!`](crate::trace!) macros; they skip all formatting when the
//! level is filtered out.

use std::io::Write;
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The failure itself.
    Error,
    /// Degraded but proceeding (lost checkpoint, backoff).
    Warn,
    /// Milestones (service start, campaign done). The default.
    Info,
    /// Per-request / per-shard detail.
    Debug,
    /// Per-chunk firehose.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name; `None` means `off`.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized word back.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(None),
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            other => Err(format!("unknown GD_LOG level {other:?}")),
        }
    }
}

/// A parsed `GD_LOG` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Default maximum level (`None` = off).
    default: Option<Level>,
    /// `(target-prefix, level)` overrides; longest matching prefix wins.
    targets: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// The filter used when `GD_LOG` is unset: `info` for every target.
    pub fn default_filter() -> Filter {
        Filter { default: Some(Level::Info), targets: Vec::new() }
    }

    /// Parses a `GD_LOG` value. Unknown words are ignored rather than
    /// fatal — a typo'd filter must not take the process down — but the
    /// rest of the spec still applies.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default_filter();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            match clause.split_once('=') {
                None => {
                    if let Ok(level) = Level::parse(clause) {
                        filter.default = level;
                    }
                }
                Some((target, level)) => {
                    if let Ok(level) = Level::parse(level) {
                        filter.targets.push((target.trim().to_owned(), level));
                    }
                }
            }
        }
        // Longest prefix first, so the first match below is the winner.
        filter.targets.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
        filter
    }

    /// Whether an event for `target` at `level` passes this filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let max = self
            .targets
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map_or(self.default, |(_, level)| *level);
        max.is_some_and(|max| level <= max)
    }
}

fn active() -> &'static Filter {
    static ACTIVE: OnceLock<Filter> = OnceLock::new();
    ACTIVE.get_or_init(|| match std::env::var("GD_LOG") {
        Ok(spec) => Filter::parse(&spec),
        Err(_) => Filter::default_filter(),
    })
}

/// Whether an event would be written — callers use this to skip field
/// formatting entirely (the macros do it for you).
pub fn enabled(target: &str, level: Level) -> bool {
    active().enabled(target, level)
}

/// Milliseconds since the first logging call of the process.
fn uptime_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Quotes a value for `key=value` output when it needs it (spaces,
/// quotes, `=`, or emptiness).
fn format_value(v: &str) -> String {
    let bare = !v.is_empty()
        && v.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '=' && c != '\\');
    if bare {
        v.to_owned()
    } else {
        let mut out = String::from("\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

/// Writes one structured line to stderr. Prefer the level macros; this
/// is their single funnel (and what tests can call directly).
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    let mut line = format!(
        "t={} level={} target={} msg={}",
        uptime_ms(),
        level.as_str(),
        target,
        format_value(msg)
    );
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(&format_value(value));
    }
    line.push('\n');
    // One write_all per line keeps concurrent lines from interleaving.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Logs at an explicit [`Level`]: `logline!(level, "target", "msg", key = value, …)`.
#[macro_export]
macro_rules! logline {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        if $crate::log::enabled($target, $level) {
            $crate::log::emit(
                $level,
                $target,
                &::std::string::ToString::to_string(&$msg),
                &[$((stringify!($key), ::std::format!("{}", $value))),*],
            );
        }
    }};
}

/// Logs at [`Level::Error`]. See [`logline!`](crate::logline!).
#[macro_export]
macro_rules! error {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logline!($crate::Level::Error, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Warn`]. See [`logline!`](crate::logline!).
#[macro_export]
macro_rules! warn {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logline!($crate::Level::Warn, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Info`]. See [`logline!`](crate::logline!).
#[macro_export]
macro_rules! info {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logline!($crate::Level::Info, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Debug`]. See [`logline!`](crate::logline!).
#[macro_export]
macro_rules! debug {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logline!($crate::Level::Debug, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Trace`]. See [`logline!`](crate::logline!).
#[macro_export]
macro_rules! trace {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logline!($crate::Level::Trace, $target, $msg $(, $key = $value)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_parsing_accepts_aliases_and_rejects_noise() {
        assert_eq!(Level::parse("WARN"), Ok(Some(Level::Warn)));
        assert_eq!(Level::parse("warning"), Ok(Some(Level::Warn)));
        assert_eq!(Level::parse(" off "), Ok(None));
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn default_filter_is_info() {
        let f = Filter::default_filter();
        assert!(f.enabled("anything", Level::Info));
        assert!(f.enabled("anything", Level::Error));
        assert!(!f.enabled("anything", Level::Debug));
    }

    #[test]
    fn bare_level_sets_the_default() {
        let f = Filter::parse("debug");
        assert!(f.enabled("gd_exec", Level::Debug));
        assert!(!f.enabled("gd_exec", Level::Trace));
        let off = Filter::parse("off");
        assert!(!off.enabled("gd_exec", Level::Error), "off silences even errors");
    }

    #[test]
    fn target_overrides_win_by_longest_prefix() {
        let f = Filter::parse("warn,gd_exec=trace,gd_campaign::service=off");
        assert!(f.enabled("gd_exec", Level::Trace));
        assert!(f.enabled("gd_exec::check", Level::Trace), "prefix match covers submodules");
        assert!(!f.enabled("gd_campaign", Level::Info), "default warn applies elsewhere");
        assert!(f.enabled("gd_campaign", Level::Warn));
        assert!(!f.enabled("gd_campaign::service", Level::Error), "exact override is off");
        // The longer of two matching prefixes wins, regardless of spec order.
        let g = Filter::parse("error,gd=off,gd_exec=debug");
        assert!(g.enabled("gd_exec", Level::Debug));
        assert!(!g.enabled("gd_emu", Level::Error));
    }

    #[test]
    fn unknown_words_are_ignored_not_fatal() {
        let f = Filter::parse("garbage,debug,also=bogus");
        assert!(f.enabled("x", Level::Debug), "the valid clause still applies");
        assert_eq!(Filter::parse("???"), Filter::default_filter());
    }

    #[test]
    fn values_are_quoted_only_when_needed() {
        assert_eq!(format_value("plain"), "plain");
        assert_eq!(format_value("/campaigns/3"), "/campaigns/3");
        assert_eq!(format_value("two words"), "\"two words\"");
        assert_eq!(format_value(""), "\"\"");
        assert_eq!(format_value("a=b"), "\"a=b\"");
        assert_eq!(format_value("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
    }

    #[test]
    fn macros_compile_with_and_without_fields() {
        // Emission goes to stderr; this only pins the macro surface.
        crate::info!("gd_obs::test", "plain message");
        crate::debug!("gd_obs::test", "with fields", a = 1, b = "two words",);
        crate::trace!("gd_obs::test", format!("computed {}", 3), n = 3);
    }
}
