//! Figure 2: exhaustive bit-flip sweeps over every Thumb conditional
//! branch, under the AND (1→0), OR (0→1), and AND-with-`0x0000`-invalid
//! fault models. (Moved here from `gd-bench` so the campaign engine can
//! shard and serve the workload; `gd_bench::fig2` re-exports this
//! module.)

use std::fmt::Write as _;

use gd_emu::Config;
use gd_glitch_emu::{branch_case, sweep_case, Direction, Outcome, SweepResult};
use gd_thumb::Cond;

/// One Figure 2 panel: every branch's sweep under one fault model.
#[derive(Debug)]
pub struct Panel {
    /// Panel label (e.g. `"AND"`).
    pub label: &'static str,
    /// Per-branch sweeps, in `Cond::ALL` order.
    pub sweeps: Vec<SweepResult>,
}

impl Panel {
    /// The aggregate success rate over all branches and all k ≥ 1.
    pub fn overall_success(&self) -> f64 {
        let mut total = 0u64;
        let mut success = 0u64;
        for s in &self.sweeps {
            let agg = s.aggregate();
            total += agg.total();
            success += agg.count(Outcome::Success);
        }
        100.0 * success as f64 / total.max(1) as f64
    }
}

/// The four published panel configurations, in output order: label,
/// flip direction, emulator config.
pub fn panel_configs() -> Vec<(&'static str, Direction, Config)> {
    vec![
        ("AND (2a)", Direction::And, Config::default()),
        ("OR (2b)", Direction::Or, Config::default()),
        (
            "AND, 0x0000 invalid (2c)",
            Direction::And,
            Config { zero_is_invalid: true, ..Config::default() },
        ),
        ("XOR (discussed in §IV)", Direction::Xor, Config::default()),
    ]
}

/// Runs one panel. `conds` limits the sweep (tests use a subset).
///
/// The per-branch sweeps are independent 2¹⁶-execution jobs, so they fan
/// out across [`gd_exec`] workers; results come back in `conds` order,
/// keeping the printed panel byte-identical to a serial run. (The inner
/// mask-space fan-out in [`sweep_case`] detects the nesting and stays
/// serial inside each worker.)
pub fn panel(label: &'static str, direction: Direction, cfg: Config, conds: &[Cond]) -> Panel {
    let sweeps = gd_exec::par_map(conds, |&c| sweep_case(&branch_case(c), direction, cfg));
    Panel { label, sweeps }
}

/// The published panels over all fourteen branches, plus the XOR model the
/// paper ran but omitted from the figure ("the results were in between
/// those of and and or").
pub fn run_all() -> Vec<Panel> {
    let all = Cond::ALL;
    panel_configs().into_iter().map(|(label, dir, cfg)| panel(label, dir, cfg, &all)).collect()
}

/// Renders a panel in Figure 2's structure: success-rate-by-k series plus
/// the failure histogram.
pub fn render_panel(p: &Panel) -> String {
    let mut out = crate::report::heading_str(&format!("Figure 2 — {}", p.label));
    write!(out, "{:<6}", "instr").unwrap();
    for k in 0..=16 {
        write!(out, " {k:>5}").unwrap();
    }
    writeln!(out, "   (success % by number of flipped bits)").unwrap();
    for s in &p.sweeps {
        write!(out, "{:<6}", s.name).unwrap();
        for t in &s.per_k {
            write!(out, " {:>5.1}", t.success_rate()).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "instr", "Success", "BadRead", "Invalid", "BadFetch", "Failed", "NoEffect"
    )
    .unwrap();
    for s in &p.sweeps {
        let agg = s.aggregate();
        let total = agg.total().max(1) as f64;
        let f = |o: Outcome| 100.0 * agg.count(o) as f64 / total;
        writeln!(
            out,
            "{:<6} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            s.name,
            f(Outcome::Success),
            f(Outcome::BadRead),
            f(Outcome::InvalidInstruction),
            f(Outcome::BadFetch),
            f(Outcome::Failed),
            f(Outcome::NoEffect),
        )
        .unwrap();
    }
    writeln!(out, "overall success: {:.2}%", p.overall_success()).unwrap();
    out
}

/// Prints a panel (legacy CLI surface over [`render_panel`]).
pub fn print_panel(p: &Panel) {
    print!("{}", render_panel(p));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_sits_between_and_and_or() {
        let conds = [Cond::Eq, Cond::Ne];
        let and = panel("AND", Direction::And, Config::default(), &conds);
        let or = panel("OR", Direction::Or, Config::default(), &conds);
        let xor = panel("XOR", Direction::Xor, Config::default(), &conds);
        // Over all fourteen branches XOR lands between the two (41.7% vs
        // 42.5%/10.4%); on this two-branch test subset it may graze AND, so
        // allow a small tolerance on the upper side.
        assert!(
            xor.overall_success() > or.overall_success()
                && xor.overall_success() < and.overall_success() + 2.0,
            "paper §IV: XOR between AND ({:.1}%) and OR ({:.1}%), got {:.1}%",
            and.overall_success(),
            or.overall_success(),
            xor.overall_success()
        );
    }

    #[test]
    fn panel_shapes_match_the_paper() {
        // A two-branch subset keeps the test fast; shape assertions follow
        // the paper's Figure 2 claims.
        let conds = [Cond::Eq, Cond::Ne];
        let and = panel("AND", Direction::And, Config::default(), &conds);
        let or = panel("OR", Direction::Or, Config::default(), &conds);
        let and0 = panel(
            "AND0",
            Direction::And,
            Config { zero_is_invalid: true, ..Config::default() },
            &conds,
        );
        assert!(and.overall_success() > or.overall_success());
        // Figure 2c: making 0x0000 invalid barely moves the AND rate.
        let delta = (and.overall_success() - and0.overall_success()).abs();
        assert!(delta < 3.0, "0x0000-invalid changes little: Δ={delta:.2}");
    }
}
