//! End-to-end semantics tests: assemble snippets, run them, check
//! architectural state against the ARMv6-M ARM.

use gd_emu::{
    Access, Config, Emu, Fault, FaultKind, LoadOverride, MemFault, Perms, RunOutcome, StopReason,
};
use gd_thumb::asm::assemble;
use gd_thumb::Reg;

const FLASH: u32 = 0x0800_0000;
const SRAM: u32 = 0x2000_0000;

fn boot(src: &str) -> Emu {
    boot_with(src, Config::default())
}

fn boot_with(src: &str, cfg: Config) -> Emu {
    let mut emu = Emu::with_config(cfg);
    emu.mem.map("flash", FLASH, 0x4000, Perms::RX).unwrap();
    emu.mem.map("sram", SRAM, 0x4000, Perms::RW).unwrap();
    let prog = assemble(src, FLASH).unwrap_or_else(|e| panic!("{e}"));
    emu.mem.load(FLASH, &prog.code).unwrap();
    emu.set_pc(FLASH);
    emu.cpu.set_sp(SRAM + 0x4000);
    emu
}

fn run_to_bkpt(emu: &mut Emu) -> u8 {
    match emu.run(10_000) {
        RunOutcome::Stop { reason: StopReason::Bkpt(n), .. } => n,
        other => panic!("expected bkpt, got {other:?}"),
    }
}

#[test]
fn mov_add_sub_flags() {
    let mut emu = boot("movs r0, #0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert!(emu.cpu.flags.z);
    assert!(!emu.cpu.flags.n);

    let mut emu = boot("movs r0, #0\nsubs r0, #1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), u32::MAX);
    assert!(emu.cpu.flags.n);
    assert!(!emu.cpu.flags.c, "0 - 1 borrows, so C is clear");
    assert!(!emu.cpu.flags.v);

    let mut emu = boot("movs r0, #1\nsubs r0, #1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert!(emu.cpu.flags.z);
    assert!(emu.cpu.flags.c, "1 - 1 does not borrow, so C is set");
}

#[test]
fn signed_overflow_on_subtract() {
    // 0x80000000 - 1 overflows to 0x7FFFFFFF: V set (paper's bvs setup).
    let mut emu = boot("movs r0, #1\nlsls r0, r0, #31\nsubs r0, #1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0x7FFF_FFFF);
    assert!(emu.cpu.flags.v);
    assert!(!emu.cpu.flags.n);
}

#[test]
fn adc_and_sbc_propagate_carry() {
    // 0xFFFFFFFF + 1 = 0 carry-out; then ADC r2, r2 doubles with carry in.
    let mut emu = boot(
        "movs r0, #0\nsubs r0, #1\nmovs r1, #1\nadds r0, r0, r1\nmovs r2, #5\nadcs r2, r2\nbkpt #0",
    );
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0);
    assert_eq!(emu.cpu.reg(Reg::R2), 11, "5 + 5 + carry");

    // SBC with borrow: 5 - 3 - (1 - C) with C clear → 1.
    let mut emu = boot("movs r0, #0\nsubs r0, #1\nmovs r1, #5\nmovs r2, #3\nsbcs r1, r2\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 1, "C was cleared by the borrow above");
}

#[test]
fn shifts_by_immediate() {
    let mut emu = boot("movs r0, #1\nlsls r0, r0, #31\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0x8000_0000);
    assert!(!emu.cpu.flags.c);

    // lsr #0 encodes LSR #32: result 0, carry = bit 31.
    let mut emu = boot("movs r0, #1\nlsls r0, r0, #31\nlsrs r0, r0, #32\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0);
    assert!(emu.cpu.flags.c);
    assert!(emu.cpu.flags.z);

    // asr #32 sign-fills.
    let mut emu = boot("movs r0, #1\nlsls r0, r0, #31\nasrs r0, r0, #32\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), u32::MAX);
}

#[test]
fn shifts_by_register() {
    let mut emu = boot("movs r0, #0xFF\nmovs r1, #4\nlsls r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0xFF0);

    // Shift by 32 via register: result 0, carry = old bit 0.
    let mut emu = boot("movs r0, #1\nmovs r1, #32\nlsls r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0);
    assert!(emu.cpu.flags.c);

    // Shift by 33: result 0, carry clear.
    let mut emu = boot("movs r0, #1\nmovs r1, #33\nlsls r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0);
    assert!(!emu.cpu.flags.c);

    // ROR by 8.
    let mut emu = boot("movs r0, #0xAB\nmovs r1, #8\nrors r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0xAB00_0000);
    assert!(emu.cpu.flags.c);
}

#[test]
fn alu_ops() {
    let mut emu = boot("movs r0, #0b1100\nmovs r1, #0b1010\nands r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0b1000);

    let mut emu = boot("movs r0, #0b1100\nmovs r1, #0b1010\neors r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0b0110);

    let mut emu = boot("movs r0, #0b1100\nmovs r1, #0b1010\nbics r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0b0100);

    let mut emu = boot("movs r0, #7\nmovs r1, #6\nmuls r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 42);

    let mut emu = boot("movs r0, #0\nmvns r0, r0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), u32::MAX);
    assert!(emu.cpu.flags.n);

    let mut emu = boot("movs r0, #5\nnegs r0, r0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 5u32.wrapping_neg());

    // TST sets flags without writing the destination.
    let mut emu = boot("movs r0, #0xF0\nmovs r1, #0x0F\ntst r0, r1\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0xF0);
    assert!(emu.cpu.flags.z);
}

#[test]
fn extension_and_reversal() {
    let mut emu = boot("movs r0, #0xFF\nsxtb r1, r0\nuxtb r2, r0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), u32::MAX);
    assert_eq!(emu.cpu.reg(Reg::R2), 0xFF);

    let mut emu = boot("ldr r0, =0x12345678\nrev r1, r0\nrev16 r2, r0\nrevsh r3, r0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 0x7856_3412);
    assert_eq!(emu.cpu.reg(Reg::R2), 0x3412_7856);
    assert_eq!(emu.cpu.reg(Reg::R3), 0x0000_7856);

    let mut emu = boot("ldr r0, =0x1234ABCD\nsxth r1, r0\nuxth r2, r0\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 0xFFFF_ABCD);
    assert_eq!(emu.cpu.reg(Reg::R2), 0x0000_ABCD);
}

#[test]
fn memory_round_trip_through_sram() {
    let src = "
        ldr r0, =0x20000010
        ldr r1, =0xCAFEBABE
        str r1, [r0]
        ldr r2, [r0]
        ldrh r3, [r0]
        ldrb r4, [r0, #1]
        bkpt #0
    ";
    let mut emu = boot(src);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R2), 0xCAFE_BABE);
    assert_eq!(emu.cpu.reg(Reg::R3), 0xBABE);
    assert_eq!(emu.cpu.reg(Reg::R4), 0xBA);
}

#[test]
fn sp_relative_and_stack_ops() {
    let src = "
        sub sp, #8
        movs r0, #99
        str r0, [sp, #4]
        ldr r1, [sp, #4]
        add sp, #8
        bkpt #0
    ";
    let mut emu = boot(src);
    let sp0 = emu.cpu.sp();
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 99);
    assert_eq!(emu.cpu.sp(), sp0);
}

#[test]
fn push_pop_round_trip() {
    let src = "
        movs r0, #1
        movs r1, #2
        movs r4, #4
        push {r0, r1, r4}
        movs r0, #0
        movs r1, #0
        movs r4, #0
        pop {r0, r1, r4}
        bkpt #0
    ";
    let mut emu = boot(src);
    let sp0 = emu.cpu.sp();
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 1);
    assert_eq!(emu.cpu.reg(Reg::R1), 2);
    assert_eq!(emu.cpu.reg(Reg::R4), 4);
    assert_eq!(emu.cpu.sp(), sp0);
}

#[test]
fn bl_and_bx_lr_call_return() {
    let src = "
        movs r0, #0
        bl func
        adds r0, #1
        bkpt #0
    func:
        adds r0, #10
        bx lr
    ";
    let mut emu = boot(src);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 11);
}

#[test]
fn pop_pc_returns() {
    let src = "
        bl func
        bkpt #7
    func:
        push {lr}
        pop {pc}
    ";
    let mut emu = boot(src);
    assert_eq!(run_to_bkpt(&mut emu), 7);
}

#[test]
fn stm_ldm_block_transfer() {
    let src = "
        ldr r0, =0x20000100
        movs r1, #0x11
        movs r2, #0x22
        stmia r0!, {r1, r2}
        ldr r0, =0x20000100
        ldmia r0!, {r3, r4}
        bkpt #0
    ";
    let mut emu = boot(src);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R3), 0x11);
    assert_eq!(emu.cpu.reg(Reg::R4), 0x22);
    assert_eq!(emu.cpu.reg(Reg::R0), 0x2000_0108, "ldm writes back");
}

#[test]
fn conditional_branches_all_follow_flags() {
    // For each condition, set flags so the branch is taken: landing on the
    // fallthrough marker means the branch failed.
    let cases = [
        ("movs r0, #0", "beq"),
        ("movs r0, #1", "bne"),
        ("movs r0, #0\ncmp r0, #0", "bcs"),
        ("movs r0, #0\ncmp r0, #1", "bcc"),
        ("movs r0, #0\nsubs r0, #1", "bmi"),
        ("movs r0, #0", "bpl"),
        ("movs r0, #1\nlsls r0, r0, #31\nsubs r0, #1", "bvs"),
        ("movs r0, #0\nadds r0, #1", "bvc"),
        ("movs r0, #2\ncmp r0, #1", "bhi"),
        ("movs r0, #0\ncmp r0, #0", "bls"),
        ("movs r0, #1\ncmp r0, #0", "bge"),
        ("movs r0, #0\ncmp r0, #1", "blt"),
        ("movs r0, #2\ncmp r0, #1", "bgt"),
        ("movs r0, #0\ncmp r0, #0", "ble"),
    ];
    for (setup, branch) in cases {
        let src = format!("{setup}\n{branch} taken\nbkpt #1\ntaken: bkpt #2\n");
        let mut emu = boot(&src);
        assert_eq!(run_to_bkpt(&mut emu), 2, "{branch} should be taken after `{setup}`");
    }
}

#[test]
fn untaken_conditional_falls_through() {
    let mut emu = boot("movs r0, #1\nbeq taken\nbkpt #1\ntaken: bkpt #2\n");
    assert_eq!(run_to_bkpt(&mut emu), 1);
}

#[test]
fn infinite_loop_hits_step_limit() {
    let mut emu = boot("loop: b loop\n");
    assert!(matches!(emu.run(500), RunOutcome::StepLimit { steps: 500 }));
}

#[test]
fn bad_read_fault() {
    let mut emu = boot("ldr r0, =0x40000000\nldr r1, [r0]\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault { fault, .. } => {
            assert!(fault.is_bad_read());
            assert!(!fault.is_bad_fetch());
        }
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn unaligned_word_access_faults() {
    let mut emu = boot("ldr r0, =0x20000001\nldr r1, [r0]\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault {
            fault: Fault::Mem(MemFault { kind: FaultKind::Unaligned, access: Access::Read, .. }),
            ..
        } => {}
        other => panic!("expected unaligned read, got {other:?}"),
    }
}

#[test]
fn bad_fetch_after_wild_branch() {
    // mov pc, r0 with r0 pointing into unmapped space.
    let mut emu = boot("ldr r0, =0x10000000\nmov pc, r0\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault { fault, .. } => assert!(fault.is_bad_fetch()),
        other => panic!("expected bad fetch, got {other:?}"),
    }
}

#[test]
fn undefined_instruction_faults() {
    let mut emu = boot(".hword 0xDE00\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault { fault, .. } => assert!(fault.is_undefined()),
        other => panic!("expected undefined, got {other:?}"),
    }
    // An isolated 32-bit prefix followed by a non-BL halfword.
    let mut emu = boot(".hword 0xF000\n.hword 0x2000\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault { fault, .. } => assert!(fault.is_undefined()),
        other => panic!("expected undefined, got {other:?}"),
    }
}

#[test]
fn interworking_to_arm_faults() {
    // bx with bit 0 clear.
    let mut emu = boot("ldr r0, =0x08000000\nbx r0\nbkpt #0");
    match emu.run(100) {
        RunOutcome::Fault { fault: Fault::InterworkArm { .. }, .. } => {}
        other => panic!("expected interworking fault, got {other:?}"),
    }
}

#[test]
fn svc_and_wfi_stop() {
    let mut emu = boot("svc #3\n");
    assert!(matches!(emu.run(10), RunOutcome::Stop { reason: StopReason::Svc(3), .. }));
    let mut emu = boot("wfi\n");
    assert!(matches!(emu.run(10), RunOutcome::Stop { reason: StopReason::Wfi, .. }));
}

#[test]
fn zero_halfword_config() {
    // Default: 0x0000 is LSLS r0, r0, #0 and falls through to the bkpt.
    let mut emu = boot(".hword 0x0000\nbkpt #0");
    assert!(matches!(emu.run(10), RunOutcome::Stop { .. }));
    // Hardened ISA (Figure 2c): 0x0000 is undefined.
    let mut emu =
        boot_with(".hword 0x0000\nbkpt #0", Config { zero_is_invalid: true, ..Config::default() });
    match emu.run(10) {
        RunOutcome::Fault { fault, .. } => assert!(fault.is_undefined()),
        other => panic!("expected undefined, got {other:?}"),
    }
}

#[test]
fn load_override_models_bus_corruption() {
    let src = "
        ldr r0, =0x20000020
        movs r1, #0
        str r1, [r0]
        ldr r2, [r0]
        bkpt #0
    ";
    let mut emu = boot(src);
    // Let the setup run, then arm the override right before the final load.
    for _ in 0..3 {
        emu.step().unwrap();
    }
    emu.load_override = Some(LoadOverride::Replace(0x55));
    emu.step().unwrap();
    assert_eq!(emu.cpu.reg(Reg::R2), 0x55, "the load sees the bus residue");
    assert_eq!(emu.load_override, None, "override is one-shot");
    assert_eq!(emu.mem.read32(0x2000_0020).unwrap(), 0, "memory itself is intact");
}

#[test]
fn pc_reads_as_instruction_plus_four() {
    let mut emu = boot("mov r0, pc\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), FLASH + 4);

    // add r0, pc: r0 = 0 + (addr + 4).
    let mut emu = boot("movs r0, #0\nadd r0, pc\nbkpt #0");
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), FLASH + 2 + 4);
}

#[test]
fn adr_loads_aligned_pc_relative_address() {
    let src = "
        adr r0, data
        ldr r1, [r0]
        bkpt #0
        .align
    data:
        .word 0x11223344
    ";
    let mut emu = boot(src);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 0x1122_3344);
}

#[test]
fn step_counting() {
    let mut emu = boot("movs r0, #1\nmovs r1, #2\nbkpt #0");
    emu.run(100);
    assert_eq!(emu.steps(), 3, "bkpt counts as a step");
}

#[test]
fn blx_register_sets_lr() {
    let src = "
        ldr r0, =func_thumb
        blx r0
        bkpt #9
    func:
        bx lr
    ";
    // Manually build the thumb-bit address: func | 1.
    let mut emu = Emu::new();
    emu.mem.map("flash", FLASH, 0x1000, Perms::RX).unwrap();
    emu.mem.map("sram", SRAM, 0x1000, Perms::RW).unwrap();
    let prog = assemble(&src.replace("func_thumb", "func"), FLASH).unwrap();
    // Patch the literal to set the Thumb bit.
    let func = prog.symbols["func"];
    let mut code = prog.code.clone();
    let pool = code.len() - 4;
    code[pool..].copy_from_slice(&(func | 1).to_le_bytes());
    emu.mem.load(FLASH, &code).unwrap();
    emu.set_pc(FLASH);
    emu.cpu.set_sp(SRAM + 0x1000);
    match emu.run(100) {
        RunOutcome::Stop { reason: StopReason::Bkpt(9), .. } => {}
        other => panic!("expected bkpt 9, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Thumb-2 wide subset (Config { wide: true }) — the assembler is Thumb-1
// only, so these boot from encoder output.

fn boot_wide(instrs: &[gd_thumb::Instr]) -> Emu {
    let mut emu = Emu::with_config(Config { wide: true, ..Config::default() });
    emu.mem.map("flash", FLASH, 0x4000, Perms::RX).unwrap();
    emu.mem.map("sram", SRAM, 0x4000, Perms::RW).unwrap();
    let mut code = Vec::new();
    for instr in instrs {
        match instr.try_encode().unwrap_or_else(|e| panic!("{instr}: {e}")) {
            gd_thumb::Encoding::Half(hw) => code.extend_from_slice(&hw.to_le_bytes()),
            gd_thumb::Encoding::Pair(hw1, hw2) => {
                code.extend_from_slice(&hw1.to_le_bytes());
                code.extend_from_slice(&hw2.to_le_bytes());
            }
        }
    }
    code.extend_from_slice(&0xBE00u16.to_le_bytes()); // bkpt #0
    emu.mem.load(FLASH, &code).unwrap();
    emu.set_pc(FLASH);
    emu.cpu.set_sp(SRAM + 0x4000);
    emu
}

#[test]
fn wide_branches_take_their_offsets() {
    use gd_thumb::{Cond, Instr};
    // b.w over a `movs r0, #1`; landing pad sets r1.
    let mut emu = boot_wide(&[
        Instr::BW { offset: 2 },
        Instr::MovImm { rd: Reg::R0, imm8: 1 },
        Instr::MovImm { rd: Reg::R1, imm8: 2 },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0);
    assert_eq!(emu.cpu.reg(Reg::R1), 2);

    // bne.w falls through when Z is set, branches when clear.
    for (imm8, taken) in [(0u8, false), (1, true)] {
        let mut emu = boot_wide(&[
            Instr::MovImm { rd: Reg::R2, imm8 },
            Instr::BCondW { cond: Cond::Ne, offset: 2 },
            Instr::MovImm { rd: Reg::R0, imm8: 1 },
            Instr::MovImm { rd: Reg::R1, imm8: 2 },
        ]);
        run_to_bkpt(&mut emu);
        assert_eq!(emu.cpu.reg(Reg::R0) == 0, taken, "imm8={imm8}");
        assert_eq!(emu.cpu.reg(Reg::R1), 2);
    }
}

#[test]
fn wide_data_processing_results_and_flags() {
    use gd_thumb::{Instr, Reg, WideDpOp};
    // movw/movt build a full 32-bit constant.
    let mut emu = boot_wide(&[
        Instr::MovW { rd: Reg::R0, imm16: 0xBEEF },
        Instr::MovT { rd: Reg::R0, imm16: 0xDEAD },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0xDEAD_BEEF);

    // orr.w with rn = PC is MOV.W: r1 = #0xAB00AB00 (pattern 0b10).
    // teq.w (rd = PC) against the same value sets Z without writing.
    let mut emu = boot_wide(&[
        Instr::DpImm { op: WideDpOp::Orr, s: false, rn: Reg::PC, rd: Reg::R1, imm12: 0x2AB },
        Instr::DpImm { op: WideDpOp::Eor, s: true, rn: Reg::R1, rd: Reg::PC, imm12: 0x2AB },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R1), 0xAB00_AB00);
    assert!(emu.cpu.flags.z, "teq.w of equal values sets Z");

    // subs.w producing zero sets Z and C (no borrow); adds.w overflow
    // sets V: 0x7F800000 + 0x7F800000.
    let mut emu = boot_wide(&[
        Instr::MovW { rd: Reg::R2, imm16: 7 },
        Instr::DpImm { op: WideDpOp::Sub, s: true, rn: Reg::R2, rd: Reg::R3, imm12: 7 },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R3), 0);
    assert!(emu.cpu.flags.z && emu.cpu.flags.c && !emu.cpu.flags.v);

    let mut emu = boot_wide(&[
        Instr::DpImm { op: WideDpOp::Orr, s: false, rn: Reg::PC, rd: Reg::R4, imm12: 0x4FF },
        Instr::DpImm { op: WideDpOp::Add, s: true, rn: Reg::R4, rd: Reg::R4, imm12: 0x4FF },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R4), 0xFF00_0000);
    assert!(emu.cpu.flags.v, "0x7F800000 + 0x7F800000 overflows signed");
    assert!(!emu.cpu.flags.c);

    // Logical ops take C from the immediate expansion: #0x80000000 has
    // bit 31 set, so movs.w updates C even though nothing was shifted.
    let mut emu = boot_wide(&[Instr::DpImm {
        op: WideDpOp::Orr,
        s: true,
        rn: Reg::PC,
        rd: Reg::R5,
        imm12: 0x400,
    }]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R5), 0x8000_0000);
    assert!(emu.cpu.flags.c && emu.cpu.flags.n);
}

#[test]
fn wide_load_store_round_trip() {
    use gd_thumb::{Instr, Reg};
    // Build an SRAM address, store a constant through str.w at a +imm12
    // offset no narrow encoding reaches, load it back through ldr.w.
    let mut emu = boot_wide(&[
        Instr::MovW { rd: Reg::R0, imm16: 0 },
        Instr::MovT { rd: Reg::R0, imm16: 0x2000 },
        Instr::MovW { rd: Reg::R1, imm16: 0xC0DE },
        Instr::StrW { rt: Reg::R1, rn: Reg::R0, imm12: 0x800 },
        Instr::LdrW { rt: Reg::R2, rn: Reg::R0, imm12: 0x800 },
    ]);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.mem.read32(SRAM + 0x800).unwrap(), 0xC0DE);
    assert_eq!(emu.cpu.reg(Reg::R2), 0xC0DE);
}

#[test]
fn wide_ldr_literal_and_ldr_to_pc() {
    use gd_thumb::{Instr, Reg};
    // ldr.w rt, [pc, #N]: base is Align(PC, 4). Program starts with the
    // 4-byte load, then bkpt + padding, then a literal at FLASH + 8.
    let mut emu = Emu::with_config(Config { wide: true, ..Config::default() });
    emu.mem.map("flash", FLASH, 0x100, Perms::RX).unwrap();
    let mut code = Vec::new();
    match (Instr::LdrW { rt: Reg::R0, rn: Reg::PC, imm12: 4 }).try_encode().unwrap() {
        gd_thumb::Encoding::Pair(a, b) => {
            code.extend_from_slice(&a.to_le_bytes());
            code.extend_from_slice(&b.to_le_bytes());
        }
        other => panic!("{other:?}"),
    }
    code.extend_from_slice(&0xBE00u16.to_le_bytes());
    code.extend_from_slice(&0xBF00u16.to_le_bytes()); // nop padding to align
    code.extend_from_slice(&0x1234_5678u32.to_le_bytes());
    emu.mem.load(FLASH, &code).unwrap();
    emu.set_pc(FLASH);
    run_to_bkpt(&mut emu);
    assert_eq!(emu.cpu.reg(Reg::R0), 0x1234_5678);

    // ldr.w pc, [...] is an interworking branch; an even target faults.
    let mut emu = boot_wide(&[
        Instr::MovW { rd: Reg::R0, imm16: 0 },
        Instr::MovT { rd: Reg::R0, imm16: 0x2000 },
        Instr::LdrW { rt: Reg::PC, rn: Reg::R0, imm12: 0 },
    ]);
    emu.mem.write32(SRAM, FLASH | 1).unwrap();
    // Exactly the three instructions: movw, movt, ldr.w pc.
    assert!(matches!(emu.run(3), RunOutcome::StepLimit { steps: 3 }));
    assert_eq!(emu.pc(), FLASH, "pc-load branched back to the image base");

    // An even target is an interworking fault, exactly as BX.
    let mut emu = boot_wide(&[
        Instr::MovW { rd: Reg::R0, imm16: 0 },
        Instr::MovT { rd: Reg::R0, imm16: 0x2000 },
        Instr::LdrW { rt: Reg::PC, rn: Reg::R0, imm12: 0 },
    ]);
    emu.mem.write32(SRAM, FLASH).unwrap();
    match emu.run(10) {
        RunOutcome::Fault { fault: Fault::InterworkArm { target, .. }, .. } => {
            assert_eq!(target, FLASH);
        }
        other => panic!("expected interworking fault, got {other:?}"),
    }
}
