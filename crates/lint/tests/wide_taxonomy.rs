//! Regression pin for the wide-prefix taxonomy rework.
//!
//! `branch_flips` used to stop at the opaque `WidePrefix` class for every
//! single-bit flip that landed in the 32-bit prefix space. The
//! context-aware `branch_flips_with` resolves each of those flips through
//! the halfword that actually follows the branch in the image, into
//! `WideBranch` / `WideLoad` / `WideOther` / `WideUndefined`. This test
//! compiles the paper's boot firmware and pins both sides:
//!
//! - every context-free `WidePrefix` flip resolves to exactly one of the
//!   four wide classes once context is supplied — none is left opaque and
//!   no other class shifts;
//! - the §IV diversion totals (the numbers in the committed lint goldens)
//!   are identical under both classifiers.

use gd_backend::compile;
use gd_glitch_emu::classify::{branch_flips, branch_flips_with, FlipClass};
use gd_thumb::is_32bit_prefix;

fn is_wide(class: FlipClass) -> bool {
    matches!(
        class,
        FlipClass::WideBranch
            | FlipClass::WideLoad
            | FlipClass::WideOther
            | FlipClass::WideUndefined
    )
}

#[test]
fn boot_image_wide_prefix_flips_all_resolve() {
    let image = compile(&gd_firmware::boot(), "main").expect("boot compiles");
    let mut branches = 0usize;
    let mut old_wide_prefix = 0usize;
    let mut resolved = [0usize; 4]; // branch, load, other, undefined
    for extent in &image.extents {
        let mut addr = extent.base;
        while addr + 2 <= extent.code_end {
            let off = (addr - image.text_base) as usize;
            let hw = u16::from_le_bytes([image.text[off], image.text[off + 1]]);
            if is_32bit_prefix(hw) {
                addr += 4;
                continue;
            }
            let hw2 = image.text.get(off + 2..off + 4).map(|b| u16::from_le_bytes([b[0], b[1]]));
            if let (Some(old), Some(new)) = (branch_flips(hw), branch_flips_with(hw, hw2)) {
                branches += 1;
                assert!(hw2.is_some(), "mid-image branch always has a successor halfword");
                for (o, n) in old.flips.iter().zip(&new.flips) {
                    assert_eq!(o.encoding, n.encoding);
                    if o.class == FlipClass::WidePrefix {
                        old_wide_prefix += 1;
                        match n.class {
                            FlipClass::WideBranch => resolved[0] += 1,
                            FlipClass::WideLoad => resolved[1] += 1,
                            FlipClass::WideOther => resolved[2] += 1,
                            FlipClass::WideUndefined => resolved[3] += 1,
                            other => {
                                panic!("{:#06x} bit {}: prefix flip left as {other:?}", hw, o.bit)
                            }
                        }
                    } else {
                        assert_eq!(o.class, n.class, "non-prefix flips must not shift");
                        assert!(!is_wide(n.class));
                    }
                }
                // The goldens only count diversions; those are invariant.
                assert_eq!(old.diversions(), new.diversions(), "hw={hw:#06x}");
            }
            addr += 2;
        }
    }
    // The boot image has a real branch population and a real wide-prefix
    // flip surface; pin both so a decoder regression cannot silently
    // shrink the experiment.
    assert!(branches >= 10, "boot has {branches} conditional branches");
    assert!(old_wide_prefix >= branches, "every bcond has at least the bit-13 prefix flip");
    assert_eq!(old_wide_prefix, resolved.iter().sum::<usize>());
    assert!(resolved[3] > 0, "some prefix flips land on undefined wide patterns");
}
