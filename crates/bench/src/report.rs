//! Small helpers for printing experiment tables.

/// Formats a rate as a percentage with the paper's precision.
pub fn pct(num: u64, denom: u64) -> String {
    if denom == 0 {
        "-".to_owned()
    } else {
        format!("{:.3}%", 100.0 * num as f64 / denom as f64)
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a heading with rules.
pub fn heading(text: &str) {
    println!();
    rule(text.len().max(60));
    println!("{text}");
    rule(text.len().max(60));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(585, 78_408), "0.746%");
        assert_eq!(pct(0, 0), "-");
        assert_eq!(pct(1, 4), "25.000%");
    }
}
