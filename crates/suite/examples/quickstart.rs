//! Quickstart: harden a guard with GlitchResistor, compile it to Thumb-1
//! firmware, run it on the simulated board, and watch a glitch get caught.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gd_backend::compile;
use gd_chipwhisperer::{run_attack, AttackSpec, Device, FaultModel, GlitchParams, SuccessCheck};
use gd_ir::parse_module;
use glitch_resistor::{harden, Config, Defenses};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A security-critical guard, as compilers see it: firmware that only
    //    unlocks when a (volatile) flag becomes non-zero.
    let source = "
module quickstart

global @unlock : i32 = 0

fn @main() -> i32 {
entry:
  %t = inttoptr i32 0x48000014
  store volatile i32 1, %t          ; glitch trigger (GPIO)
  br loop
loop:
  %p = globaladdr @unlock
  %v = load volatile i32, %p
  %locked = icmp eq i32 %v, 0
  br %locked, loop, open
open:
  ret i32 0xACCE55                  ; the protected path
}
";
    let mut module = parse_module(source)?;

    // 2. Apply every GlitchResistor defense at compile time.
    let report = harden(&mut module, &Config::new(Defenses::ALL));
    gd_ir::verify_module(&module)?;
    println!("instrumented: {report:#?}");

    // 3. Lower to ARMv6-M machine code with an STM32-style memory layout.
    let image = compile(&module, "main")?;
    println!(
        "firmware: {} bytes text, {} bytes data, entry {:#010x}",
        image.sizes.text,
        image.sizes.data + image.sizes.bss,
        image.entry
    );

    // 4. Attack it on the simulated ChipWhisperer rig: one glitch right on
    //    the guard comparison, at a parameter point known to inject faults.
    let device = Device::from_image(&image);
    let model = FaultModel::default();
    // The delay defense writes its seed to flash at boot (~177k cycles), so
    // the budget must reach past the trigger into the guarded loop.
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(0xACCE55), max_cycles: 200_000 };
    let mut outcomes = std::collections::BTreeMap::<String, u32>::new();
    for boot in 0..2_000u64 {
        let cycle = ((boot % 25) * 4) as u32;
        let attempt =
            run_attack(&device, &model, GlitchParams::single(cycle, 12, -18), boot, &spec, None);
        *outcomes.entry(format!("{:?}", attempt.outcome)).or_default() += 1;
    }
    println!("2,000 single-glitch attempts against the hardened guard:");
    for (outcome, count) in &outcomes {
        println!("  {outcome:<10} {count}");
    }
    println!("(the redundant complemented re-checks route faults into gr_detected)");
    Ok(())
}
