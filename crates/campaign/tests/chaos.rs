//! Self-healing under deterministic fault injection — the acceptance
//! tests for the gd-chaos integration.
//!
//! These live in their own test binary (their own process) because a
//! chaos override is process-global: fault-free tests must never share
//! a process with an active plan. Within this binary, every test takes
//! an [`gd_chaos::activate`] or [`gd_chaos::suppress`] guard, which
//! both scopes its schedule and serializes the tests against each
//! other.

use std::path::PathBuf;
use std::time::Duration;

use gd_campaign::engine::Engine;
use gd_campaign::error::CampaignError;
use gd_campaign::http::{request, request_timeout_full, request_with_retries};
use gd_campaign::service::{Server, ServerConfig};
use gd_campaign::spec::CampaignSpec;

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gd-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 3-shard Figure 2 slice — the standard small-but-real campaign.
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::fig2();
    spec.shards = Some((0, 3));
    spec
}

/// Value of a single-series metric in the current Prometheus rendering.
fn metric_value(name: &str) -> f64 {
    gd_obs::global()
        .render_prometheus()
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// The tentpole acceptance property: under a schedule whose rates leave
/// the retry budgets unexhausted, every surviving campaign is
/// bit-identical to the fault-free result — at any worker count.
#[test]
fn surviving_chaos_runs_are_bit_identical_at_every_thread_count() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    // Exec worker panics compound across every nested sweep chunk, so
    // their rate must be tiny; the shard/store sites can run hot.
    let plan = gd_chaos::Plan::parse(
        "1701:engine.shard_panic=0.3,store.torn_write=0.4,store.read_err=0.4,\
         store.corrupt=0.4,exec.worker_panic=0.002,exec.slow_chunk=0.05",
    )
    .unwrap();
    let store = tmp_store("soak");
    for (round, threads) in [1u32, 2, 8].into_iter().enumerate() {
        let mut spec = small_spec();
        spec.threads = Some(threads);
        // Each round re-seeds, so the faults land differently; the
        // persistent store carries checkpoints between rounds, which
        // exercises the chaos-afflicted *read* paths too.
        let _chaos = gd_chaos::activate(plan.with_seed(plan.seed() + round as u64));
        let _ = std::fs::remove_dir_all(store.join("cache"));
        let result =
            Engine::with_store(&store).with_shard_attempts(10).run(&spec).expect("run survives");
        assert_eq!(result.text, baseline.text, "threads={threads}");
        assert_eq!(result.shards, baseline.shards, "threads={threads}");
    }
    let _ = std::fs::remove_dir_all(&store);
}

/// A shard that panics on every attempt fails the campaign with a typed
/// error naming the shard, the attempt count, and the cause — never a
/// process abort.
#[test]
fn exhausted_shard_retries_surface_a_typed_shard_failed_error() {
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("5:engine.shard_panic=1").unwrap());
    let quarantined_before = metric_value("gd_campaign_shards_quarantined_total");
    let err = Engine::ephemeral().with_shard_attempts(2).run(&small_spec()).unwrap_err();
    match &err {
        CampaignError::ShardFailed { shard, label, attempts, cause } => {
            assert!(*shard < 3, "a shard of the plan: {shard}");
            assert!(!label.is_empty());
            assert_eq!(*attempts, 2, "the configured budget was spent");
            assert!(cause.starts_with(gd_chaos::PANIC_PREFIX), "{cause}");
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    assert!(err.retryable(), "an environmental failure invites resubmission");
    let msg = err.to_string();
    assert!(msg.contains("after 2 attempts"), "{msg}");
    assert!(
        metric_value("gd_campaign_shards_quarantined_total") >= quarantined_before + 2.0,
        "every panicking attempt is counted"
    );
}

/// Worker-level panics (below the per-shard quarantine) abort whole
/// fan-out passes; when no pass ever completes a shard, the engine
/// reports FanoutFailed instead of spinning forever.
#[test]
fn a_fanout_that_never_progresses_fails_typed_not_forever() {
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("9:exec.worker_panic=1").unwrap());
    let retries_before = metric_value("gd_campaign_fanout_retries_total");
    let err = Engine::ephemeral().run(&small_spec()).unwrap_err();
    match &err {
        CampaignError::FanoutFailed { attempts, cause } => {
            assert!(*attempts >= 1);
            assert!(cause.starts_with(gd_chaos::PANIC_PREFIX), "{cause}");
        }
        other => panic!("expected FanoutFailed, got {other:?}"),
    }
    assert!(metric_value("gd_campaign_fanout_retries_total") > retries_before);
}

/// Every store write torn mid-flight: the seal rejects each torn file on
/// read, the engine recomputes, and the campaign still produces the
/// fault-free bytes.
#[test]
fn universally_torn_store_writes_never_corrupt_results() {
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&small_spec()).unwrap()
    };
    let store = tmp_store("torn-writes");
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("3:store.torn_write=1").unwrap());
    let failures_before = metric_value("gd_campaign_store_integrity_failures_total");
    let first = Engine::with_store(&store).run(&small_spec()).unwrap();
    assert_eq!(first.text, baseline.text);
    // Everything on disk is torn; a second engine must detect that and
    // recompute all three shards rather than trust any file.
    let engine2 = Engine::with_store(&store);
    let second = engine2.run(&small_spec()).unwrap();
    assert_eq!(second.text, baseline.text);
    assert_eq!(engine2.executed(), 3, "no torn file was trusted");
    assert!(metric_value("gd_campaign_store_integrity_failures_total") > failures_before);
    let _ = std::fs::remove_dir_all(&store);
}

/// The stuck-shard watchdog flags attempts that outlive the deadline —
/// any real shard outlives a 1 ms one.
#[test]
fn the_watchdog_counts_shards_exceeding_the_deadline() {
    let _off = gd_chaos::suppress();
    let stalls_before = metric_value("gd_campaign_watchdog_stalls_total");
    let mut spec = small_spec();
    spec.shards = Some((0, 1));
    Engine::ephemeral().with_watchdog_deadline(Duration::from_millis(1)).run(&spec).unwrap();
    assert!(
        metric_value("gd_campaign_watchdog_stalls_total") > stalls_before,
        "a 1 ms deadline must flag a real shard"
    );
}

/// A campaign killed mid-run resumes from its checkpoints: a fresh
/// engine over the same store reruns only the shard that died, and the
/// merged bytes match the uninterrupted run exactly.
#[test]
fn a_restarted_engine_resumes_from_checkpoints_mid_campaign() {
    let mut spec = small_spec();
    spec.threads = Some(1); // serial: shards execute (and draw chaos) in order
    let baseline = {
        let _off = gd_chaos::suppress();
        Engine::ephemeral().run(&spec).unwrap()
    };
    // Pick a seed whose opening is [survive, survive, panic]: shards 0
    // and 1 checkpoint, then shard 2 kills the campaign (one attempt,
    // no retry — the "engine dies mid-run" shape).
    let base = gd_chaos::Plan::parse("0:engine.shard_panic=0.5").unwrap();
    let seed = (0..10_000u64)
        .find(|&s| base.with_seed(s).decisions("engine.shard_panic", 3) == [false, false, true])
        .expect("a seed with the [ok, ok, panic] opening exists");
    let store = tmp_store("resume");
    {
        let _chaos = gd_chaos::activate(base.with_seed(seed));
        let err = Engine::with_store(&store).with_shard_attempts(1).run(&spec).unwrap_err();
        match &err {
            CampaignError::ShardFailed { shard: 2, .. } => {}
            other => panic!("expected shard 2 to kill the run, got {other:?}"),
        }
    }
    // "Restart": a new engine process-equivalent over the same store.
    let _off = gd_chaos::suppress();
    let engine = Engine::with_store(&store);
    let result = engine.run(&spec).unwrap();
    assert_eq!(engine.executed(), 1, "shards 0 and 1 must come from checkpoints");
    assert_eq!(result.text, baseline.text, "resumed bytes match the uninterrupted run");
    assert_eq!(result.shards, baseline.shards);
    let _ = std::fs::remove_dir_all(&store);
}

/// The service reports an exhausted campaign as a 409 whose body names
/// the shard, the attempts, and the cause — the typed error crosses the
/// HTTP boundary intact.
#[test]
fn the_service_serves_shard_failures_as_409_with_the_full_story() {
    let _chaos = gd_chaos::activate(gd_chaos::Plan::parse("11:engine.shard_panic=1").unwrap());
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let spec_json = {
        let mut spec = small_spec();
        spec.shards = Some((0, 1));
        spec.to_json().to_string_compact().unwrap()
    };
    let (status, body) = request(&addr, "POST", "/campaigns", Some(&spec_json)).unwrap();
    assert_eq!(status, 202, "{body}");
    // Five attempts at ~5-80 ms backoff finish well inside this poll.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = request(&addr, "GET", "/campaigns/0", None).unwrap();
        if body.contains("\"failed\"") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "campaign never failed: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let (status, body) = request(&addr, "GET", "/campaigns/0/results", None).unwrap();
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("campaign failed"), "{body}");
    assert!(body.contains("shard 0"), "{body}");
    assert!(body.contains("after 5 attempts"), "{body}");
    assert!(body.contains("injected shard panic"), "{body}");
    server.shutdown().unwrap();
}

/// Dropped connections and delayed reads on the service side are
/// absorbed by the retrying client.
#[test]
fn the_retrying_client_survives_dropped_connections() {
    let _chaos = gd_chaos::activate(
        gd_chaos::Plan::parse("2:http.drop_conn=0.5,http.delay_read=0.5").unwrap(),
    );
    let injected_before = metric_value("gd_chaos_injected_total{site=\"http.drop_conn\"}");
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    for _ in 0..4 {
        let (status, body) =
            request_with_retries(&addr, "GET", "/metrics", None, 8, Duration::from_secs(5))
                .expect("retries absorb the drops");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("gd_chaos_injected_total"), "{body}");
    }
    assert!(
        metric_value("gd_chaos_injected_total{site=\"http.drop_conn\"}") > injected_before,
        "the schedule actually dropped connections"
    );
    // Shutdown also rides the retrying client: a drop on the shutdown
    // request must not leave the server running.
    let shutdown =
        request_with_retries(&addr, "POST", "/shutdown", None, 8, Duration::from_secs(5))
            .expect("shutdown lands despite drops");
    assert_eq!(shutdown.0, 200);
    server.join().unwrap();
}

/// 429 responses carry a Retry-After header (chaos-free, but it shares
/// the guard-serialized binary since it exercises the same client).
#[test]
fn queue_full_rejections_carry_retry_after() {
    let _off = gd_chaos::suppress();
    let config = ServerConfig { queue_limit: 0, ..ServerConfig::default() };
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();
    let spec_json = small_spec().to_json().to_string_compact().unwrap();
    // With a zero-length queue every submission is rejected up front.
    let (status, headers, body) =
        request_timeout_full(&addr, "POST", "/campaigns", Some(&spec_json), Duration::from_secs(5))
            .unwrap();
    assert_eq!(status, 429, "{body}");
    let retry_after = headers.iter().find(|(k, _)| k == "retry-after");
    assert_eq!(retry_after.map(|(_, v)| v.as_str()), Some("1"), "{headers:?}");
    server.shutdown().unwrap();
}
