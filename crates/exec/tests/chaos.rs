//! Fault-injection behavior of the fan-out (the gd-chaos exec sites).
//!
//! These live in their own test binary — and therefore their own
//! process — because a chaos override is process-global: unit tests
//! computing fault-free results must never share a process with an
//! active plan.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gd_exec::{par_map, par_map_chunks, with_threads};

#[test]
fn injected_worker_panics_propagate_with_the_chaos_marker() {
    let _chaos =
        gd_chaos::activate(gd_chaos::Plan::parse("21:exec.worker_panic=1").expect("valid"));
    let items: Vec<u32> = (0..64).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_threads(2, || par_map_chunks(&items, 8, |c| c.items.len()))
    }));
    let payload = result.expect_err("an injected panic must propagate like a real one");
    let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.starts_with(gd_chaos::PANIC_PREFIX), "marker survives: {msg}");
    // The serial path injects too (chaos must not hide behind the
    // worker pool).
    let serial = catch_unwind(AssertUnwindSafe(|| {
        with_threads(1, || par_map_chunks(&items, 8, |c| c.items.len()))
    }));
    serial.expect_err("serial fan-outs inject as well");
}

#[test]
fn injected_slow_chunks_never_change_results() {
    let _chaos =
        gd_chaos::activate(gd_chaos::Plan::parse("22:exec.slow_chunk=0.5").expect("valid"));
    let items: Vec<u64> = (0..257).collect();
    let out = with_threads(3, || par_map(&items, |&x| x.wrapping_mul(31) ^ 7));
    let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
    assert_eq!(out, expect, "scheduling jitter is invisible in the merge");
}

#[test]
fn suppression_beats_any_schedule() {
    let _off = gd_chaos::suppress();
    let items: Vec<u32> = (0..512).collect();
    let out = with_threads(4, || par_map(&items, |&x| x + 1));
    assert_eq!(out.len(), 512);
    assert_eq!(out[511], 512);
}
