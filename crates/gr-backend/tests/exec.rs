//! Differential execution tests: every program must compute the same
//! result compiled-and-emulated as it does under the IR reference
//! interpreter, and hardened binaries must behave like unhardened ones.

use gd_backend::compile;
use gd_emu::{RunOutcome, StopReason};
use gd_ir::{parse_module, verify_module, Interpreter, RtVal};
use gd_thumb::Reg;
use glitch_resistor::{harden, Config, Defenses};

/// Compiles and runs `main` on the emulator; returns r0 at the final bkpt.
fn run_native(src: &str) -> u32 {
    let m = parse_module(src).unwrap();
    verify_module(&m).unwrap();
    let image = compile(&m, "main").unwrap_or_else(|e| panic!("{e}"));
    let mut emu = image.boot_emu();
    match emu.run(2_000_000) {
        RunOutcome::Stop { reason: StopReason::Bkpt(0), .. } => emu.cpu.reg(Reg::R0),
        other => panic!("expected clean halt, got {other:?}"),
    }
}

/// Runs `main` under the reference interpreter.
fn run_interp(src: &str) -> u32 {
    let m = parse_module(src).unwrap();
    let mut interp = Interpreter::new(&m);
    interp.fuel = 10_000_000;
    interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap().int() as u32
}

fn differential(src: &str) -> u32 {
    let native = run_native(src);
    let reference = run_interp(src);
    assert_eq!(native, reference, "native vs interpreter disagree for:\n{src}");
    native
}

#[test]
fn constants_and_arithmetic() {
    assert_eq!(
        differential("fn @main() -> i32 {\nentry:\n  %1 = add i32 40, 2\n  ret i32 %1\n}\n"),
        42
    );
    assert_eq!(
        differential(
            "fn @main() -> i32 {\nentry:\n  %1 = mul i32 6, 7\n  %2 = sub i32 %1, 2\n  %3 = xor i32 %2, 0xFF\n  ret i32 %3\n}\n"
        ),
        (6 * 7 - 2) ^ 0xFF
    );
}

#[test]
fn big_constants_come_from_the_literal_pool() {
    assert_eq!(
        differential(
            "fn @main() -> i32 {\nentry:\n  %1 = add i32 0xD3B9AEC6, 0\n  ret i32 %1\n}\n"
        ),
        0xD3B9_AEC6
    );
    // Shifted-immediate and inverted-immediate shortcuts.
    assert_eq!(
        differential("fn @main() -> i32 {\nentry:\n  %1 = add i32 0x1FE000, 0\n  ret i32 %1\n}\n"),
        0x1FE000
    );
    assert_eq!(
        differential(
            "fn @main() -> i32 {\nentry:\n  %1 = add i32 0xFFFFFF7F, 0\n  ret i32 %1\n}\n"
        ),
        0xFFFF_FF7F
    );
}

#[test]
fn shifts_and_division() {
    let src = "
fn @main() -> i32 {
entry:
  %1 = shl i32 1, 20
  %2 = lshr i32 %1, 4
  %3 = ashr i32 0xFFFFFF00, 4
  %4 = and i32 %3, 0xFF
  %5 = add i32 %2, %4
  %6 = udiv i32 %5, 7
  %7 = urem i32 %5, 7
  %8 = add i32 %6, %7
  ret i32 %8
}
";
    differential(src);
}

#[test]
fn division_by_zero_is_total() {
    let src = "
fn @main() -> i32 {
entry:
  %1 = udiv i32 100, 0
  %2 = urem i32 77, 0
  %3 = add i32 %1, %2
  ret i32 %3
}
";
    assert_eq!(differential(src), 77);
}

#[test]
fn control_flow_and_compares() {
    for (a, b) in [(3i64, 4i64), (4, 3), (3, 3), (-1, 0)] {
        let src = format!(
            "fn @main() -> i32 {{\nentry:\n  %1 = icmp slt i32 {a}, {b}\n  br %1, t, f\nt:\n  ret i32 1\nf:\n  ret i32 0\n}}\n"
        );
        differential(&src);
    }
    for (a, b) in [(1i64, 2i64), (0xFFFF_FFFF, 0), (5, 5)] {
        let src = format!(
            "fn @main() -> i32 {{\nentry:\n  %1 = icmp ult i32 {a}, {b}\n  br %1, t, f\nt:\n  ret i32 1\nf:\n  ret i32 0\n}}\n"
        );
        differential(&src);
    }
}

#[test]
fn loops_with_phis() {
    let src = "
fn @main() -> i32 {
entry:
  br loop
loop:
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %acc = phi i32 [ 0, entry ], [ %acc2, loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp ule i32 %i2, 10
  br %c, loop, done
done:
  ret i32 %acc2
}
";
    assert_eq!(differential(src), (0..=10).sum::<u32>());
}

#[test]
fn swap_phis_do_not_lose_values() {
    // Classic parallel-copy hazard: two phis exchanging values each trip.
    let src = "
fn @main() -> i32 {
entry:
  br loop
loop:
  %a = phi i32 [ 1, entry ], [ %b, loop ]
  %b = phi i32 [ 2, entry ], [ %a, loop ]
  %i = phi i32 [ 0, entry ], [ %i2, loop ]
  %i2 = add i32 %i, 1
  %c = icmp ult i32 %i2, 5
  br %c, loop, done
done:
  %r = shl i32 %a, 8
  %r2 = or i32 %r, %b
  ret i32 %r2
}
";
    // The back edge is taken four times (i2 = 1..=4): an even number of
    // swaps leaves a = 1, b = 2.
    assert_eq!(differential(src), 0x0102);
}

#[test]
fn globals_and_memory() {
    let src = "
global @counter : i32 = 5
global @zeroed : i32 = 0
fn @main() -> i32 {
entry:
  %p = globaladdr @counter
  %v = load i32, %p
  %v2 = add i32 %v, 10
  store i32 %v2, %p
  %q = globaladdr @zeroed
  %w = load i32, %q
  %r = add i32 %v2, %w
  ret i32 %r
}
";
    assert_eq!(differential(src), 15);
}

#[test]
fn narrow_types_wrap_correctly() {
    let src = "
fn @main() -> i32 {
entry:
  %1 = add i8 200, 100
  %2 = cast i8 %1 to i32
  %3 = add i16 0xFFFF, 2
  %4 = cast i16 %3 to i32
  %5 = shl i32 %4, 8
  %6 = or i32 %5, %2
  ret i32 %6
}
";
    // i8: 300 & 0xFF = 44; i16: 0x10001 & 0xFFFF = 1 → 0x0100 | 44.
    assert_eq!(differential(src), 0x100 | 44);
}

#[test]
fn alloca_and_stack_round_trip() {
    let src = "
fn @main() -> i32 {
entry:
  %s = alloca i32
  store i32 0xCAFE, %s
  %v = load i32, %s
  ret i32 %v
}
";
    assert_eq!(differential(src), 0xCAFE);
}

#[test]
fn calls_with_arguments_and_results() {
    let src = "
fn @mac(%a: i32, %b: i32, %c: i32) -> i32 {
entry:
  %1 = mul i32 %a, %b
  %2 = add i32 %1, %c
  ret i32 %2
}
fn @main() -> i32 {
entry:
  %1 = call i32 @mac(6, 7, 8)
  %2 = call i32 @mac(%1, 2, 0)
  ret i32 %2
}
";
    assert_eq!(differential(src), (6 * 7 + 8) * 2);
}

#[test]
fn recursion_works() {
    let src = "
fn @fact(%n: i32) -> i32 {
entry:
  %c = icmp ule i32 %n, 1
  br %c, base, rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(%n1)
  %p = mul i32 %n, %r
  ret i32 %p
}
fn @main() -> i32 {
entry:
  %r = call i32 @fact(6)
  ret i32 %r
}
";
    assert_eq!(differential(src), 720);
}

#[test]
fn not_and_i1_handling() {
    let src = "
fn @main() -> i32 {
entry:
  %1 = not i32 0
  %2 = icmp eq i32 %1, 0xFFFFFFFF
  %3 = cast i1 %2 to i32
  ret i32 %3
}
";
    assert_eq!(differential(src), 1);
}

#[test]
fn hardened_firmware_computes_the_same_results() {
    let src = "
enum Status { FAILURE, SUCCESS }
global @tick : i32 = 0 sensitive

fn @get_status(%sig: i32) -> i32 {
entry:
  %ok = icmp eq i32 %sig, 0x1234
  br %ok, good, bad
good:
  ret i32 1
bad:
  ret i32 0
}

fn @main() -> i32 {
entry:
  %p = globaladdr @tick
  %t = load i32, %p
  %t2 = add i32 %t, 1
  store i32 %t2, %p
  %r = call i32 @get_status(0x1234)
  %c = icmp eq i32 %r, 1
  br %c, boot, halt
boot:
  ret i32 100
halt:
  ret i32 200
}
";
    let plain = run_native(src);
    assert_eq!(plain, 100);
    for defenses in [
        Defenses::BRANCHES,
        Defenses::LOOPS,
        Defenses::INTEGRITY,
        Defenses::RETURNS,
        Defenses::ENUMS,
        Defenses::ALL_EXCEPT_DELAY,
        Defenses::ALL,
    ] {
        let mut m = parse_module(src).unwrap();
        harden(&mut m, &Config::new(defenses));
        verify_module(&m).unwrap();
        let image = compile(&m, "main").unwrap_or_else(|e| panic!("{defenses:?}: {e}"));
        let mut emu = image.boot_emu();
        match emu.run(5_000_000) {
            RunOutcome::Stop { reason: StopReason::Bkpt(0), .. } => {
                assert_eq!(emu.cpu.reg(Reg::R0), 100, "{defenses:?}");
            }
            other => panic!("{defenses:?}: expected clean halt, got {other:?}"),
        }
        // No detection fired.
        let flag_addr = image.symbols.get("__gr_detect_flag").copied();
        if let Some(addr) = flag_addr {
            let flag = emu.mem.read32(addr).unwrap();
            assert_eq!(flag, 0, "{defenses:?}: spurious detection");
        }
    }
}

#[test]
fn hardened_image_is_larger() {
    let src = "
global @tick : i32 = 0 sensitive
fn @main() -> i32 {
entry:
  %p = globaladdr @tick
  %t = load i32, %p
  %c = icmp eq i32 %t, 0
  br %c, a, b
a:
  ret i32 1
b:
  ret i32 0
}
";
    let m = parse_module(src).unwrap();
    let base = compile(&m, "main").unwrap().sizes;
    let mut hardened = parse_module(src).unwrap();
    harden(&mut hardened, &Config::new(Defenses::ALL));
    let all = compile(&hardened, "main").unwrap().sizes;
    assert!(all.text > base.text, "hardening grows .text");
    assert!(all.shadow > 0, "integrity shadows allocated");
    assert!(all.nvm > 0, "seed lives in NVM");
}

#[test]
fn image_sections_accounted() {
    let src = "
global @a : i32 = 1
global @b : i32 = 0
global @c__integrity : i32 = -2
global @__gr_nv_seed : i32 = 0
fn @main() -> i32 {
entry:
  ret i32 0
}
";
    let m = parse_module(src).unwrap();
    let image = compile(&m, "main").unwrap();
    assert_eq!(image.sizes.data, 4);
    assert_eq!(image.sizes.bss, 4);
    assert_eq!(image.sizes.shadow, 4);
    assert_eq!(image.sizes.nvm, 4);
    assert!(image.sizes.text >= 6, "start stub plus main");
    // Address sanity: shadows live in the shadow bank.
    assert!(image.symbol("c__integrity") >= 0x2000_3800);
    assert!(image.symbol("__gr_nv_seed") >= 0x0800_F000);
    assert!(image.symbol("a") >= 0x2000_0000 && image.symbol("a") < 0x2000_3800);
}

#[test]
fn missing_entry_is_an_error() {
    let m = parse_module("fn @f() -> void {\nentry:\n  ret void\n}\n").unwrap();
    assert!(matches!(compile(&m, "main"), Err(gd_backend::LowerError::NoEntry { .. })));
}

#[test]
fn extents_cover_the_text_section_and_symbolize_resolves() {
    let src = "
fn @helper(%a: i32) -> i32 {
entry:
  %q = udiv i32 %a, 3
  %big = add i32 0xD3B9AEC6, %q
  ret i32 %big
}
fn @main() -> i32 {
entry:
  %r = call i32 @helper(9)
  ret i32 %r
}
";
    let m = parse_module(src).unwrap();
    let image = compile(&m, "main").unwrap();

    // Extents are sorted, non-overlapping, and sit inside .text.
    let text_end = 0x0800_0000 + image.text.len() as u32;
    for w in image.extents.windows(2) {
        assert!(w[0].end <= w[1].base, "{:?} overlaps {:?}", w[0], w[1]);
    }
    for e in &image.extents {
        assert!(e.base <= e.code_end && e.code_end <= e.end, "{e:?}");
        assert!(e.end <= text_end, "{e:?} outside .text");
        assert_eq!(e.base, image.symbol(&e.name), "extent base matches symbol");
    }
    let names: Vec<&str> = image.extents.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"_start"));
    assert!(names.contains(&"main"));
    assert!(names.contains(&"helper"));
    assert!(names.contains(&"__gr_udiv"), "div helper exported: {names:?}");
    assert!(!names.iter().any(|n| *n == "udiv_go"), "internal labels are not extents");

    // helper uses a wide literal: its pool is non-empty and excluded from code.
    let helper = image.extent("helper").unwrap();
    assert!(helper.code_end < helper.end, "literal pool recorded");
    assert_eq!(helper.end % 4, 0, "pool is word-aligned");

    // symbolize round-trips interior addresses and rejects padding gaps.
    assert_eq!(image.symbolize(helper.base + 2), Some(("helper", 2)));
    assert_eq!(image.symbolize(0x0800_0000), Some(("_start", 0)));
    assert_eq!(image.symbolize(text_end + 4), None, "past the image");
    let main_ext = image.extent("main").unwrap();
    assert_eq!(image.symbolize(main_ext.base), Some(("main", 0)));
}
