//! Lowering IR modules to Thumb-1 machine code.
//!
//! The code generator is deliberately simple and predictable — every IR
//! value lives in a stack slot, operands are loaded into `r0`/`r1`,
//! results stored back — because the evaluation cares about *faithful,
//! measurable* behavior under fault injection, not peak performance. This
//! also mirrors the paper's choice of `-Og` ("a worst case size").

use std::collections::{BTreeMap, HashMap};

use gd_ir::{
    BinOp, BlockId, Function, Instr as Ir, Module, Pred, Terminator, Ty, ValueDef, ValueId,
};
use gd_thumb::{asm, Cond, Instr, Reg, ShiftOp, Width};

use crate::image::{FirmwareImage, FuncExtent, SectionSizes};
use crate::layout::{section_of, Section, FLASH_BASE, NVM_BASE, SHADOW_BASE, SRAM_BASE};

/// Errors produced while lowering a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A call passes more than four arguments (r0–r3 ABI).
    TooManyArgs {
        /// Callee name.
        callee: String,
        /// Argument count.
        count: usize,
    },
    /// A function's frame exceeds the SP-relative addressing range.
    FrameTooLarge {
        /// Function name.
        func: String,
        /// Frame size in bytes.
        bytes: u32,
    },
    /// A branch target is out of range (function too large).
    BranchOutOfRange {
        /// Function name.
        func: String,
    },
    /// A literal-pool reference is out of range (function too large).
    LiteralOutOfRange {
        /// Function name.
        func: String,
    },
    /// A call references a function with no definition and no lowering.
    UnknownCallee {
        /// Callee name.
        name: String,
    },
    /// The module does not define the entry function.
    NoEntry {
        /// The expected entry name.
        name: String,
    },
}

impl core::fmt::Display for LowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LowerError::TooManyArgs { callee, count } => {
                write!(f, "call to @{callee} passes {count} arguments (max 4)")
            }
            LowerError::FrameTooLarge { func, bytes } => {
                write!(f, "@{func}: frame of {bytes} bytes exceeds sp-relative range")
            }
            LowerError::BranchOutOfRange { func } => {
                write!(f, "@{func}: branch target out of range")
            }
            LowerError::LiteralOutOfRange { func } => {
                write!(f, "@{func}: literal pool out of range")
            }
            LowerError::UnknownCallee { name } => write!(f, "unknown callee @{name}"),
            LowerError::NoEntry { name } => write!(f, "entry function @{name} not defined"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Compiles `module` into a firmware image with `entry_fn` as the program
/// entry (called from the generated `_start` stub).
///
/// # Errors
///
/// Returns [`LowerError`] for ABI and range violations; see the enum.
pub fn compile(module: &Module, entry_fn: &str) -> Result<FirmwareImage, LowerError> {
    if module.func(entry_fn).is_none() {
        return Err(LowerError::NoEntry { name: entry_fn.to_owned() });
    }

    // ---- Globals: assign addresses per section. ----
    let mut symbols = BTreeMap::new();
    let mut global_sections = BTreeMap::new();
    let mut data_records: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut cursors: HashMap<Section, u32> = HashMap::from([
        (Section::Data, SRAM_BASE),
        (Section::Shadow, SHADOW_BASE),
        (Section::Nvm, NVM_BASE),
    ]);
    let mut sizes = SectionSizes::default();
    // .data first, then .bss behind it in SRAM.
    let mut ordered: Vec<&gd_ir::Global> = module.globals.iter().collect();
    ordered.sort_by_key(|g| section_of(&g.name, g.init) == Section::Bss);
    let mut bss_start = None;
    for g in ordered {
        let section = section_of(&g.name, g.init);
        let size = g.ty.size().max(4); // word-align every global
        let cursor = match section {
            Section::Bss => {
                let c = cursors.get_mut(&Section::Data).expect("data cursor");
                bss_start.get_or_insert(*c);
                c
            }
            s => cursors.get_mut(&s).expect("section cursor"),
        };
        let addr = (*cursor + 3) & !3;
        *cursor = addr + size;
        symbols.insert(g.name.clone(), addr);
        global_sections.insert(g.name.clone(), section);
        match section {
            Section::Data => sizes.data += size,
            Section::Bss => sizes.bss += size,
            Section::Shadow => sizes.shadow += size,
            Section::Nvm => sizes.nvm += size,
        }
        // Every global gets an explicit record — including zero initializers,
        // because startup code zeroes .bss on real boards while physical
        // SRAM powers up holding garbage.
        let width = g.ty.size() as usize;
        let bytes = (g.init as u64).to_le_bytes()[..width].to_vec();
        data_records.push((addr, bytes));
    }

    // ---- Text: _start stub, functions, helper routines, call patching. ----
    let mut text: Vec<u8> = Vec::new();
    let mut call_fixups: Vec<(usize, String)> = Vec::new();
    let mut extents: Vec<FuncExtent> = Vec::new();

    // _start: bl <entry>; bkpt #0.
    symbols.insert("_start".to_owned(), FLASH_BASE);
    call_fixups.push((0, entry_fn.to_owned()));
    Instr::Bl { offset: 0 }.encode().write_to(&mut text);
    Instr::Bkpt { imm8: 0 }.encode().write_to(&mut text);
    let start_end = FLASH_BASE + text.len() as u32;
    extents.push(FuncExtent {
        name: "_start".to_owned(),
        base: FLASH_BASE,
        code_end: start_end,
        end: start_end,
        blocks: Vec::new(),
    });

    let needs_div = module.funcs.iter().any(|f| {
        f.value_ids().any(|v| {
            matches!(f.value(v), ValueDef::Instr(Ir::Bin { op: BinOp::Udiv | BinOp::Urem, .. }))
        })
    });

    for func in &module.funcs {
        // Word-align function starts (keeps literal pools simple).
        while !text.len().is_multiple_of(4) {
            Instr::NOP.encode().write_to(&mut text);
        }
        let base = FLASH_BASE + text.len() as u32;
        symbols.insert(func.name.clone(), base);
        let lowered = FnLowering::lower(func, &symbols)?;
        let fn_start = (base - FLASH_BASE) as usize;
        for (off, callee) in lowered.call_fixups {
            call_fixups.push((fn_start + off, callee));
        }
        extents.push(FuncExtent {
            name: func.name.clone(),
            base,
            code_end: base + lowered.pool_start as u32,
            end: base + lowered.code.len() as u32,
            blocks: lowered.blocks,
        });
        text.extend_from_slice(&lowered.code);
    }

    if needs_div {
        while !text.len().is_multiple_of(4) {
            Instr::NOP.encode().write_to(&mut text);
        }
        let base = FLASH_BASE + text.len() as u32;
        let helpers = asm::assemble(DIV_HELPERS, base).expect("division helpers assemble");
        for (name, addr) in &helpers.symbols {
            symbols.insert(name.clone(), *addr);
        }
        // Only the exported `__gr_` entry points become extents; internal
        // labels stay inside their owner. The helpers hold no literals.
        let helpers_end = base + helpers.code.len() as u32;
        let mut entry_points: Vec<(&String, u32)> = helpers
            .symbols
            .iter()
            .filter(|(n, _)| n.starts_with("__gr_"))
            .map(|(n, a)| (n, *a))
            .collect();
        entry_points.sort_by_key(|&(_, a)| a);
        for (i, &(name, addr)) in entry_points.iter().enumerate() {
            let end = entry_points.get(i + 1).map_or(helpers_end, |&(_, a)| a);
            extents.push(FuncExtent {
                name: name.clone(),
                base: addr,
                code_end: end,
                end,
                blocks: Vec::new(),
            });
        }
        text.extend_from_slice(&helpers.code);
    }

    // Patch calls now that every function has an address.
    for (site, callee) in call_fixups {
        let target =
            *symbols.get(&callee).ok_or(LowerError::UnknownCallee { name: callee.clone() })?;
        let site_addr = FLASH_BASE + site as u32;
        let offset = target as i64 - i64::from(site_addr + 4);
        let enc = Instr::Bl { offset: offset as i32 }
            .try_encode()
            .map_err(|_| LowerError::BranchOutOfRange { func: callee })?;
        let bytes = enc.to_bytes();
        text[site..site + 4].copy_from_slice(&bytes);
    }

    sizes.text = text.len() as u32;
    Ok(FirmwareImage {
        text,
        text_base: FLASH_BASE,
        data: data_records,
        symbols,
        entry: FLASH_BASE,
        sizes,
        global_sections,
        extents,
    })
}

/// Restoring shift-subtract division, zero-divisor semantics matching the
/// IR interpreter (`x/0 = 0`, `x%0 = x`).
const DIV_HELPERS: &str = "
__gr_udiv:
    cmp r1, #0
    bne udiv_go
    movs r0, #0
    bx lr
udiv_go:
    b __gr_udivmod
__gr_urem:
    cmp r1, #0
    beq urem_same
    push {lr}
    bl __gr_udivmod
    mov r0, r2
    pop {pc}
urem_same:
    bx lr
__gr_udivmod:
    movs r2, #0
    movs r3, #32
udm_loop:
    adds r0, r0, r0
    adcs r2, r2
    cmp r2, r1
    bcc udm_skip
    subs r2, r2, r1
    adds r0, #1
udm_skip:
    subs r3, #1
    bne udm_loop
    bx lr
";

#[derive(Debug)]
struct FnLowering {
    code: Vec<u8>,
    call_fixups: Vec<(usize, String)>,
    /// Offset where the literal pool starts (== `code.len()` when empty).
    pool_start: usize,
    /// `(block name, code offset)` per IR block, in layout order.
    blocks: Vec<(String, u32)>,
}

#[derive(Debug, Clone, Copy)]
enum LocalFixup {
    B { block: BlockId },
}

struct Ctx<'m> {
    func: &'m Function,
    code: Vec<u8>,
    slots: HashMap<ValueId, u32>,
    allocas: HashMap<ValueId, u32>,
    frame: u32,
    temp_base: u32,
    block_offsets: Vec<Option<u32>>,
    local_fixups: Vec<(usize, LocalFixup)>,
    call_fixups: Vec<(usize, String)>,
    literals: Vec<(usize, u32)>,
    fused: HashMap<ValueId, ()>,
}

impl FnLowering {
    fn lower(func: &Function, symbols: &BTreeMap<String, u32>) -> Result<FnLowering, LowerError> {
        let mut ctx = Ctx::new(func)?;
        ctx.emit_prologue()?;
        for bb in func.block_ids() {
            ctx.block_offsets[bb.index()] = Some(ctx.code.len() as u32);
            ctx.lower_block(bb, symbols)?;
        }
        ctx.patch_local_fixups()?;
        let pool_start = ctx.code.len();
        let blocks = func
            .block_ids()
            .map(|bb| {
                let off = ctx.block_offsets[bb.index()].expect("all blocks emitted");
                (func.block(bb).name.clone(), off)
            })
            .collect();
        ctx.emit_literal_pool()?;
        Ok(FnLowering { code: ctx.code, call_fixups: ctx.call_fixups, pool_start, blocks })
    }
}

fn cond_of(pred: Pred) -> Cond {
    match pred {
        Pred::Eq => Cond::Eq,
        Pred::Ne => Cond::Ne,
        Pred::Ult => Cond::Cc,
        Pred::Ule => Cond::Ls,
        Pred::Ugt => Cond::Hi,
        Pred::Uge => Cond::Cs,
        Pred::Slt => Cond::Lt,
        Pred::Sle => Cond::Le,
        Pred::Sgt => Cond::Gt,
        Pred::Sge => Cond::Ge,
    }
}

impl<'m> Ctx<'m> {
    fn new(func: &'m Function) -> Result<Ctx<'m>, LowerError> {
        // Frame: [phi temps][alloca storage][value slots].
        let max_phis = func
            .block_ids()
            .map(|bb| {
                func.block(bb)
                    .instrs
                    .iter()
                    .filter(|&&id| matches!(func.value(id), ValueDef::Instr(Ir::Phi { .. })))
                    .count()
            })
            .max()
            .unwrap_or(0) as u32;
        let mut allocas = HashMap::new();
        let mut off = max_phis * 4;
        for id in func.value_ids() {
            if let ValueDef::Instr(Ir::Alloca { ty }) = func.value(id) {
                allocas.insert(id, off);
                off += ty.size().max(4);
            }
        }
        let mut slots = HashMap::new();
        for id in func.value_ids() {
            let needs_slot = match func.value(id) {
                ValueDef::Param { .. } => true,
                ValueDef::Instr(_) => func.ty(id) != Ty::Void,
                ValueDef::Const { .. } => false,
            };
            if needs_slot {
                slots.insert(id, off);
                off += 4;
            }
        }
        let frame = (off + 7) & !7; // 8-byte aligned frame
        if frame > 1016 {
            return Err(LowerError::FrameTooLarge { func: func.name.clone(), bytes: frame });
        }
        Ok(Ctx {
            func,
            code: Vec::new(),
            slots,
            allocas,
            frame,
            temp_base: 0,
            block_offsets: vec![None; func.block_count()],
            local_fixups: Vec::new(),
            call_fixups: Vec::new(),
            literals: Vec::new(),
            fused: HashMap::new(),
        })
    }

    fn emit(&mut self, i: Instr) {
        i.encode().write_to(&mut self.code);
    }

    fn emit_prologue(&mut self) -> Result<(), LowerError> {
        self.emit(Instr::Push { rlist: 0, lr: true });
        let mut left = self.frame;
        while left > 0 {
            let step = left.min(508);
            self.emit(Instr::SubSp { imm7: (step / 4) as u8 });
            left -= step;
        }
        // Spill parameters from r0..r3 into their slots.
        for (i, _) in self.func.params.iter().enumerate().take(4) {
            let id = self.func.param(i);
            self.store_slot(Reg::new(i as u8).expect("param reg"), id)?;
        }
        if self.func.params.len() > 4 {
            return Err(LowerError::TooManyArgs {
                callee: self.func.name.clone(),
                count: self.func.params.len(),
            });
        }
        Ok(())
    }

    fn emit_epilogue(&mut self) {
        let mut left = self.frame;
        while left > 0 {
            let step = left.min(508);
            self.emit(Instr::AddSp { imm7: (step / 4) as u8 });
            left -= step;
        }
        self.emit(Instr::Pop { rlist: 0, pc: true });
    }

    fn slot_of(&self, v: ValueId) -> Result<u32, LowerError> {
        self.slots
            .get(&v)
            .copied()
            .ok_or_else(|| LowerError::FrameTooLarge { func: self.func.name.clone(), bytes: 0 })
    }

    fn load_slot(&mut self, reg: Reg, v: ValueId) -> Result<(), LowerError> {
        let off = self.slot_of(v)?;
        self.sp_access(reg, off, true)
    }

    fn store_slot(&mut self, reg: Reg, v: ValueId) -> Result<(), LowerError> {
        let off = self.slot_of(v)?;
        self.sp_access(reg, off, false)
    }

    fn sp_access(&mut self, reg: Reg, off: u32, load: bool) -> Result<(), LowerError> {
        if !off.is_multiple_of(4) || off / 4 > 255 {
            return Err(LowerError::FrameTooLarge { func: self.func.name.clone(), bytes: off });
        }
        let imm8 = (off / 4) as u8;
        self.emit(if load {
            Instr::LdrSp { rt: reg, imm8 }
        } else {
            Instr::StrSp { rt: reg, imm8 }
        });
        Ok(())
    }

    /// Materializes a value (constant or slot) into `reg`.
    fn load_val(&mut self, reg: Reg, v: ValueId) -> Result<(), LowerError> {
        match self.func.value(v) {
            ValueDef::Const { value, .. } => {
                let masked = mask_ty(self.func.ty(v), *value);
                self.emit_const(reg, masked);
                Ok(())
            }
            _ => self.load_slot(reg, v),
        }
    }

    /// Loads `value` into `reg` with the cheapest available sequence.
    fn emit_const(&mut self, reg: Reg, value: u32) {
        if value <= 255 {
            self.emit(Instr::MovImm { rd: reg, imm8: value as u8 });
            return;
        }
        // value = imm8 << shift?
        let tz = value.trailing_zeros();
        if value >> tz <= 255 {
            self.emit(Instr::MovImm { rd: reg, imm8: (value >> tz) as u8 });
            self.emit(Instr::ShiftImm { op: ShiftOp::Lsl, rd: reg, rm: reg, imm5: tz as u8 });
            return;
        }
        if !value <= 255 {
            self.emit(Instr::MovImm { rd: reg, imm8: !value as u8 });
            self.emit(Instr::Alu { op: gd_thumb::AluOp::Mvn, rdn: reg, rm: reg });
            return;
        }
        // Literal pool.
        let site = self.code.len();
        self.literals.push((site, value));
        self.emit(Instr::LdrLit { rt: reg, imm8: 0 });
    }

    #[allow(clippy::too_many_lines)]
    fn lower_block(
        &mut self,
        bb: BlockId,
        symbols: &BTreeMap<String, u32>,
    ) -> Result<(), LowerError> {
        let instrs = self.func.block(bb).instrs.clone();
        let term = self.func.block(bb).term.clone().expect("verified function");

        // Fusion: an icmp immediately consumed (only) by this block's
        // cond-br need not materialize a boolean.
        let mut fused_cmp: Option<(ValueId, Pred, ValueId, ValueId)> = None;
        if let Terminator::CondBr { cond, then_bb, else_bb } = &term {
            if let ValueDef::Instr(Ir::Icmp { pred, lhs, rhs }) = self.func.value(*cond) {
                let in_block = instrs.last() == Some(cond);
                let phi_free = !self.has_phis(*then_bb) && !self.has_phis(*else_bb);
                if in_block && phi_free && self.use_count(*cond) == 1 {
                    fused_cmp = Some((*cond, *pred, *lhs, *rhs));
                    self.fused.insert(*cond, ());
                }
            }
        }

        for id in instrs {
            if self.fused.contains_key(&id) {
                continue;
            }
            self.lower_instr(id, symbols)?;
        }

        match term {
            Terminator::Ret { value } => {
                if let Some(v) = value {
                    self.load_val(Reg::R0, v)?;
                }
                self.emit_epilogue();
            }
            Terminator::Br { target } => {
                self.emit_phi_moves(bb, target)?;
                self.branch_to(target);
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                if let Some((_, pred, lhs, rhs)) = fused_cmp {
                    self.load_val(Reg::R0, lhs)?;
                    self.load_val(Reg::R1, rhs)?;
                    self.emit(Instr::Alu { op: gd_thumb::AluOp::Cmp, rdn: Reg::R0, rm: Reg::R1 });
                    self.cond_branch_to(cond_of(pred), then_bb);
                    self.branch_to(else_bb);
                } else {
                    self.load_val(Reg::R0, cond)?;
                    self.emit(Instr::CmpImm { rn: Reg::R0, imm8: 0 });
                    // beq → else stub (cond false).
                    let else_stub = self.code.len();
                    self.emit(Instr::BCond { cond: Cond::Eq, offset: 0 }); // patched below
                    self.emit_phi_moves(bb, then_bb)?;
                    self.branch_to(then_bb);
                    let here = self.code.len() as i32;
                    let patch =
                        Instr::BCond { cond: Cond::Eq, offset: here - (else_stub as i32 + 4) }
                            .try_encode()
                            .map_err(|_| LowerError::BranchOutOfRange {
                                func: self.func.name.clone(),
                            })?;
                    self.code[else_stub..else_stub + 2].copy_from_slice(&patch.to_bytes());
                    self.emit_phi_moves(bb, else_bb)?;
                    self.branch_to(else_bb);
                }
            }
        }
        Ok(())
    }

    fn has_phis(&self, bb: BlockId) -> bool {
        self.func
            .block(bb)
            .instrs
            .iter()
            .any(|&id| matches!(self.func.value(id), ValueDef::Instr(Ir::Phi { .. })))
    }

    fn use_count(&self, v: ValueId) -> usize {
        let mut count = 0;
        for id in self.func.value_ids() {
            if let ValueDef::Instr(i) = self.func.value(id) {
                count += i.operands().iter().filter(|&&o| o == v).count();
            }
        }
        for bb in self.func.block_ids() {
            match &self.func.block(bb).term {
                Some(Terminator::CondBr { cond, .. }) if *cond == v => count += 1,
                Some(Terminator::Ret { value: Some(r) }) if *r == v => count += 1,
                _ => {}
            }
        }
        count
    }

    /// Parallel phi copies for the edge `pred → succ` through temp slots.
    fn emit_phi_moves(&mut self, pred: BlockId, succ: BlockId) -> Result<(), LowerError> {
        let mut moves: Vec<(ValueId, ValueId)> = Vec::new(); // (phi, incoming)
        for &id in &self.func.block(succ).instrs {
            if let ValueDef::Instr(Ir::Phi { incomings }) = self.func.value(id) {
                if let Some((_, v)) = incomings.iter().find(|(b, _)| *b == pred) {
                    moves.push((id, *v));
                }
            }
        }
        // Phase 1: read all sources into temps.
        for (i, (_, src)) in moves.iter().enumerate() {
            self.load_val(Reg::R0, *src)?;
            let off = self.temp_base + i as u32 * 4;
            self.sp_access(Reg::R0, off, false)?;
        }
        // Phase 2: write temps into phi slots.
        for (i, (phi, _)) in moves.iter().enumerate() {
            let off = self.temp_base + i as u32 * 4;
            self.sp_access(Reg::R0, off, true)?;
            self.store_slot(Reg::R0, *phi)?;
        }
        Ok(())
    }

    fn branch_to(&mut self, target: BlockId) {
        self.local_fixups.push((self.code.len(), LocalFixup::B { block: target }));
        self.emit(Instr::B { offset: 0 });
    }

    fn cond_branch_to(&mut self, cond: Cond, target: BlockId) {
        // b<cond> over an unconditional hop so that conditional branches get
        // the full ±2 KiB range.
        self.emit(Instr::BCond { cond, offset: 0 }); // skip the next B: offset 0 = pc+4... patched as +0? No: target is the B below's end.
        let skip_site = self.code.len() - 2;
        self.local_fixups.push((self.code.len(), LocalFixup::B { block: target }));
        self.emit(Instr::B { offset: 0 });
        // Patch b<cond> to jump over the B (to the instruction after it).
        let after = self.code.len() as i32;
        let enc = Instr::BCond { cond: cond.invert(), offset: after - (skip_site as i32 + 4) }
            .encode()
            .to_bytes();
        self.code[skip_site..skip_site + 2].copy_from_slice(&enc);
    }

    fn patch_local_fixups(&mut self) -> Result<(), LowerError> {
        for (site, LocalFixup::B { block }) in std::mem::take(&mut self.local_fixups) {
            let target = self.block_offsets[block.index()].expect("all blocks emitted") as i32;
            let enc = Instr::B { offset: target - (site as i32 + 4) }
                .try_encode()
                .map_err(|_| LowerError::BranchOutOfRange { func: self.func.name.clone() })?;
            self.code[site..site + 2].copy_from_slice(&enc.to_bytes());
        }
        Ok(())
    }

    fn emit_literal_pool(&mut self) -> Result<(), LowerError> {
        if self.literals.is_empty() {
            return Ok(());
        }
        if !self.code.len().is_multiple_of(4) {
            self.emit(Instr::NOP);
        }
        // Deduplicate values.
        let mut entries: Vec<u32> = Vec::new();
        let sites = std::mem::take(&mut self.literals);
        let mut placements: Vec<(usize, usize)> = Vec::new(); // (site, entry idx)
        for (site, value) in sites {
            let idx = entries.iter().position(|&e| e == value).unwrap_or_else(|| {
                entries.push(value);
                entries.len() - 1
            });
            placements.push((site, idx));
        }
        let pool_base = self.code.len() as u32;
        for value in &entries {
            self.code.extend_from_slice(&value.to_le_bytes());
        }
        for (site, idx) in placements {
            let entry_addr = pool_base + idx as u32 * 4;
            let pc_base = (site as u32 + 4) & !3;
            let delta = entry_addr as i64 - i64::from(pc_base);
            if delta < 0 || delta % 4 != 0 || delta / 4 > 255 {
                return Err(LowerError::LiteralOutOfRange { func: self.func.name.clone() });
            }
            // Preserve the destination register of the placeholder.
            let hw = u16::from_le_bytes([self.code[site], self.code[site + 1]]);
            let rt = Reg::new(((hw >> 8) & 7) as u8).expect("low register");
            let enc = Instr::LdrLit { rt, imm8: (delta / 4) as u8 }.encode().to_bytes();
            self.code[site..site + 2].copy_from_slice(&enc);
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn lower_instr(
        &mut self,
        id: ValueId,
        symbols: &BTreeMap<String, u32>,
    ) -> Result<(), LowerError> {
        let ValueDef::Instr(instr) = self.func.value(id).clone() else {
            unreachable!("blocks hold instructions");
        };
        let ty = self.func.ty(id);
        match instr {
            Ir::Phi { .. } => {} // handled on edges
            Ir::Bin { op, lhs, rhs } => {
                self.load_val(Reg::R0, lhs)?;
                self.load_val(Reg::R1, rhs)?;
                match op {
                    BinOp::Add => {
                        self.emit(Instr::AddReg3 { rd: Reg::R0, rn: Reg::R0, rm: Reg::R1 })
                    }
                    BinOp::Sub => {
                        self.emit(Instr::SubReg3 { rd: Reg::R0, rn: Reg::R0, rm: Reg::R1 })
                    }
                    BinOp::Mul => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Mul,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::And => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::And,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Or => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Orr,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Xor => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Eor,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Shl => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Lsl,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Lshr => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Lsr,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Ashr => self.emit(Instr::Alu {
                        op: gd_thumb::AluOp::Asr,
                        rdn: Reg::R0,
                        rm: Reg::R1,
                    }),
                    BinOp::Udiv => {
                        self.call_helper("__gr_udiv");
                    }
                    BinOp::Urem => {
                        self.call_helper("__gr_urem");
                    }
                }
                self.mask_reg(Reg::R0, ty);
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Icmp { pred, lhs, rhs } => {
                self.load_val(Reg::R0, lhs)?;
                self.load_val(Reg::R1, rhs)?;
                self.emit(Instr::Alu { op: gd_thumb::AluOp::Cmp, rdn: Reg::R0, rm: Reg::R1 });
                // cmp; b<cond> Ltrue; movs r0,#0; b Lend; Ltrue: movs r0,#1.
                self.emit(Instr::BCond { cond: cond_of(pred), offset: 2 });
                self.emit(Instr::MovImm { rd: Reg::R0, imm8: 0 });
                self.emit(Instr::B { offset: 0 });
                self.emit(Instr::MovImm { rd: Reg::R0, imm8: 1 });
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Not { arg } => {
                self.load_val(Reg::R0, arg)?;
                self.emit(Instr::Alu { op: gd_thumb::AluOp::Mvn, rdn: Reg::R0, rm: Reg::R0 });
                self.mask_reg(Reg::R0, ty);
                self.store_slot(Reg::R0, id)?;
            }
            Ir::IntToPtr { arg } => {
                self.load_val(Reg::R0, arg)?;
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Cast { arg, to } => {
                self.load_val(Reg::R0, arg)?;
                self.mask_reg(Reg::R0, to);
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Alloca { .. } => {
                let off = self.allocas[&id];
                if !off.is_multiple_of(4) || off / 4 > 255 {
                    return Err(LowerError::FrameTooLarge {
                        func: self.func.name.clone(),
                        bytes: off,
                    });
                }
                self.emit(Instr::AddSpImm { rd: Reg::R0, imm8: (off / 4) as u8 });
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Load { ptr, ty: loaded, .. } => {
                self.load_val(Reg::R0, ptr)?;
                let width = width_of(loaded);
                self.emit(Instr::LoadImm { width, rt: Reg::R0, rn: Reg::R0, imm5: 0 });
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Store { ptr, value, .. } => {
                self.load_val(Reg::R0, value)?;
                self.load_val(Reg::R1, ptr)?;
                let width = width_of(self.func.ty(value));
                self.emit(Instr::StoreImm { width, rt: Reg::R0, rn: Reg::R1, imm5: 0 });
            }
            Ir::GlobalAddr { name } => {
                let addr =
                    *symbols.get(&name).ok_or(LowerError::UnknownCallee { name: name.clone() })?;
                self.emit_const(Reg::R0, addr);
                self.store_slot(Reg::R0, id)?;
            }
            Ir::Call { callee, args } => {
                if args.len() > 4 {
                    return Err(LowerError::TooManyArgs { callee, count: args.len() });
                }
                for (i, arg) in args.iter().enumerate() {
                    self.load_val(Reg::new(i as u8).expect("arg reg"), *arg)?;
                }
                self.call_helper(&callee);
                if ty != Ty::Void {
                    self.store_slot(Reg::R0, id)?;
                }
            }
        }
        Ok(())
    }

    fn call_helper(&mut self, callee: &str) {
        self.call_fixups.push((self.code.len(), callee.to_owned()));
        self.emit(Instr::Bl { offset: 0 });
    }

    fn mask_reg(&mut self, reg: Reg, ty: Ty) {
        match ty {
            Ty::I8 => self.emit(Instr::Uxtb { rd: reg, rm: reg }),
            Ty::I16 => self.emit(Instr::Uxth { rd: reg, rm: reg }),
            Ty::I1 => {
                self.emit(Instr::MovImm { rd: Reg::R2, imm8: 1 });
                self.emit(Instr::Alu { op: gd_thumb::AluOp::And, rdn: reg, rm: Reg::R2 });
            }
            _ => {}
        }
    }
}

fn width_of(ty: Ty) -> Width {
    match ty {
        Ty::I1 | Ty::I8 => Width::Byte,
        Ty::I16 => Width::Half,
        _ => Width::Word,
    }
}

fn mask_ty(ty: Ty, v: i64) -> u32 {
    match ty {
        Ty::I1 => (v & 1) as u32,
        Ty::I8 => (v & 0xFF) as u32,
        Ty::I16 => (v & 0xFFFF) as u32,
        _ => v as u32,
    }
}
