//! Over-approximating reachability queries used by the glitch lints.
//!
//! The traversal is deliberately generous — both arms of every
//! conditional are taken (a fault may have corrupted the data the
//! condition reads), calls are both entered and stepped over, and a
//! callee exit flows to a call's continuation whenever the call site is
//! live in the *context* (reachable from the image entry — the call
//! frame may exist when the fault fires) or reached by the query
//! itself. This is the sound direction for the agreement gate: a fault
//! the simulator proves Successful must never be statically "safe".

use crate::graph::{Cfg, Term};

/// Result of one reachability query.
#[derive(Debug, Clone)]
pub struct Reached {
    /// Per-block reached flags.
    pub blocks: Vec<bool>,
    /// A reached block ends in an unresolved computed branch or call —
    /// the traversal cannot bound where it goes.
    pub hit_unresolved: bool,
}

impl Reached {
    /// Whether block `b` was reached.
    pub fn contains(&self, b: usize) -> bool {
        self.blocks[b]
    }
}

/// Blocks reachable from the image entry under the over-approximating
/// traversal — the "context" set modelling every call frame that can be
/// live when a fault fires.
pub fn entry_context(g: &Cfg, entry: u32) -> Vec<bool> {
    let start = g.index.get(&entry).copied();
    reach(g, start.as_slice(), &[]).blocks
}

/// Reachability from `starts` under a live-frame `context` (pass the
/// result of [`entry_context`]; an empty slice disables the extra
/// gating, as when computing the context itself).
pub fn reach(g: &Cfg, starts: &[usize], context: &[bool]) -> Reached {
    let n = g.blocks.len();
    let mut reached = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    let mut hit_unresolved = false;
    let visit = |b: usize, reached: &mut Vec<bool>, queue: &mut Vec<usize>| {
        if !reached[b] {
            reached[b] = true;
            queue.push(b);
        }
    };
    for &s in starts {
        visit(s, &mut reached, &mut queue);
    }
    loop {
        while let Some(b) = queue.pop() {
            if matches!(
                g.blocks[b].term,
                Term::Computed { target: None } | Term::Call { target: None }
            ) {
                hit_unresolved = true;
            }
            for &(t, _) in &g.succs[b] {
                visit(t, &mut reached, &mut queue);
            }
        }
        // Callee exits flow to continuations of live call sites.
        let mut changed = false;
        for re in &g.return_edges {
            let call_live = reached[re.call] || context.get(re.call).copied().unwrap_or(false);
            if reached[re.from] && call_live && !reached[re.to] {
                visit(re.to, &mut reached, &mut queue);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Reached { blocks: reached, hit_unresolved }
}
