//! Non-trivial return codes (paper §VI-A-b).
//!
//! Functions that only ever return constants, and whose results every
//! caller uses **directly in comparisons against constants**, get their
//! return values (and the compared constants) replaced with Reed–Solomon
//! diversified values. A glitch that corrupts the returned value then lands
//! on a valid code with negligible probability.

use std::collections::{BTreeMap, BTreeSet};

use gd_ir::{Function, Instr, Module, Terminator, ValueDef, ValueId};
use gd_rs_ecc::diversified_constants;

use crate::config::Config;
use crate::pass::{Pass, Report};

/// The return-code diversification pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReturnCodes;

impl Pass for ReturnCodes {
    fn name(&self) -> &'static str {
        "return-codes"
    }

    fn run(&self, module: &mut Module, _config: &Config, report: &mut Report) {
        for (name, consts) in return_code_candidates(module) {
            let codes = diversified_constants(consts.len() as u32);
            let mapping: BTreeMap<i64, i64> =
                consts.iter().copied().zip(codes.iter().map(|&c| i64::from(c))).collect();
            rewrite_returns(module.func_mut(&name).expect("candidate"), &mapping);
            rewrite_callers(module, &name, &mapping);
            report.returns_rewritten += 1;
        }
    }
}

/// The functions [`ReturnCodes`] would diversify, with their distinct
/// return constants, in module order. Exposed so static analysis (gd-lint
/// GL0103) applies the *same* candidate predicate as the transform — the
/// linter checks the artifact the pass produces, never a parallel
/// heuristic that could drift.
pub fn return_code_candidates(module: &Module) -> Vec<(String, Vec<i64>)> {
    module
        .funcs
        .iter()
        .filter(|f| f.ret.is_int() && f.ret.size() == 4)
        .filter(|f| returns_only_constants(f))
        .filter(|f| all_uses_are_constant_compares(module, &f.name))
        .map(|f| (f.name.clone(), distinct_return_constants(f)))
        .filter(|(_, consts)| !consts.is_empty())
        .collect()
}

fn returns_only_constants(func: &Function) -> bool {
    let rets = func.return_values();
    !rets.is_empty()
        && rets
            .iter()
            .all(|r| matches!(r, Some(v) if matches!(func.value(*v), ValueDef::Const { .. })))
}

fn distinct_return_constants(func: &Function) -> Vec<i64> {
    let mut set = BTreeSet::new();
    for r in func.return_values().into_iter().flatten() {
        if let ValueDef::Const { value, .. } = func.value(r) {
            set.insert(*value);
        }
    }
    set.into_iter().collect()
}

/// Whether every call to `callee` across the module has its result used
/// only as an `icmp` operand whose other side is a constant. A function
/// with no call sites at all is rejected: its return value escapes to the
/// environment (e.g. an entry point), so rewriting it would be observable.
fn all_uses_are_constant_compares(module: &Module, callee: &str) -> bool {
    let mut any_call = false;
    for func in &module.funcs {
        for id in func.value_ids() {
            let ValueDef::Instr(Instr::Call { callee: c, .. }) = func.value(id) else {
                continue;
            };
            if c != callee {
                continue;
            }
            any_call = true;
            // Find all uses of the call's result.
            for user in func.value_ids() {
                let ValueDef::Instr(instr) = func.value(user) else { continue };
                if !instr.operands().contains(&id) {
                    continue;
                }
                let Instr::Icmp { lhs, rhs, .. } = instr else {
                    return false; // used outside a compare
                };
                let other = if *lhs == id { *rhs } else { *lhs };
                if !matches!(func.value(other), ValueDef::Const { .. }) {
                    return false;
                }
            }
            // Uses in terminators or returns disqualify too.
            for bb in func.block_ids() {
                match &func.block(bb).term {
                    Some(Terminator::Ret { value: Some(v) }) if *v == id => return false,
                    Some(Terminator::CondBr { cond, .. }) if *cond == id => return false,
                    _ => {}
                }
            }
        }
    }
    any_call
}

fn rewrite_returns(func: &mut Function, mapping: &BTreeMap<i64, i64>) {
    for bb in func.block_ids().collect::<Vec<_>>() {
        let Some(Terminator::Ret { value: Some(v) }) = func.block(bb).term else {
            continue;
        };
        let ValueDef::Const { value, .. } = *func.value(v) else { continue };
        if let Some(&new) = mapping.get(&value) {
            let ty = func.ty(v);
            let nv = func.const_int(ty, new);
            func.block_mut(bb).term = Some(Terminator::Ret { value: Some(nv) });
        }
    }
}

fn rewrite_callers(module: &mut Module, callee: &str, mapping: &BTreeMap<i64, i64>) {
    for fi in 0..module.funcs.len() {
        let func = &module.funcs[fi];
        // Call results of `callee` in this function.
        let call_ids: Vec<ValueId> = func
            .value_ids()
            .filter(|&id| {
                matches!(
                    func.value(id),
                    ValueDef::Instr(Instr::Call { callee: c, .. }) if c == callee
                )
            })
            .collect();
        if call_ids.is_empty() {
            continue;
        }
        // Compares whose one side is a call result and other side a const.
        let mut rewrites: Vec<(ValueId, bool /*lhs is call*/, i64)> = Vec::new();
        for user in func.value_ids() {
            let ValueDef::Instr(Instr::Icmp { lhs, rhs, .. }) = func.value(user) else {
                continue;
            };
            let (lhs, rhs) = (*lhs, *rhs);
            let (call_is_lhs, other) = if call_ids.contains(&lhs) {
                (true, rhs)
            } else if call_ids.contains(&rhs) {
                (false, lhs)
            } else {
                continue;
            };
            if let ValueDef::Const { value, .. } = func.value(other) {
                if let Some(&new) = mapping.get(value) {
                    rewrites.push((user, call_is_lhs, new));
                }
            }
        }
        let func = &mut module.funcs[fi];
        for (user, call_is_lhs, new) in rewrites {
            let ty = match func.value(user) {
                ValueDef::Instr(Instr::Icmp { lhs, rhs, .. }) => {
                    func.ty(if call_is_lhs { *rhs } else { *lhs })
                }
                _ => unreachable!(),
            };
            let nv = func.const_int(ty, new);
            if let ValueDef::Instr(Instr::Icmp { lhs, rhs, .. }) = func.value_mut(user) {
                if call_is_lhs {
                    *rhs = nv;
                } else {
                    *lhs = nv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Defenses};
    use gd_ir::{parse_module, print_module, verify_module, Interpreter, RtVal};

    const SRC: &str = "
fn @verify(%sig: i32) -> i32 {
entry:
  %ok = icmp eq i32 %sig, 0x1234
  br %ok, good, bad
good:
  ret i32 1
bad:
  ret i32 0
}

fn @main(%sig: i32) -> i32 {
entry:
  %r = call i32 @verify(%sig)
  %c = icmp eq i32 %r, 1
  br %c, boot, halt
boot:
  ret i32 100
halt:
  ret i32 200
}
";

    fn harden(src: &str) -> (Module, Report) {
        let mut m = parse_module(src).unwrap();
        let mut report = Report::default();
        ReturnCodes.run(&mut m, &Config::new(Defenses::RETURNS), &mut report);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        (m, report)
    }

    #[test]
    fn rewrites_returns_and_compares_consistently() {
        let (m, report) = harden(SRC);
        assert_eq!(report.returns_rewritten, 1);
        let text = print_module(&m);
        assert!(!text.contains("ret i32 1\n"), "trivial 1 replaced:\n{text}");
        assert!(!text.contains("ret i32 0\n"), "trivial 0 replaced:\n{text}");
        // Semantics preserved.
        for (sig, want) in [(0x1234i64, 100i64), (7, 200)] {
            let mut interp = Interpreter::new(&m);
            let r = interp.run("main", &[RtVal::Int(sig)], &mut |_, _| RtVal::Int(0)).unwrap();
            assert_eq!(r, RtVal::Int(want), "main({sig:#x})");
        }
    }

    #[test]
    fn rewritten_codes_are_far_apart() {
        let (m, _) = harden(SRC);
        let f = m.func("verify").unwrap();
        let mut codes = Vec::new();
        for r in f.return_values().into_iter().flatten() {
            if let ValueDef::Const { value, .. } = f.value(r) {
                codes.push(*value as u32);
            }
        }
        assert_eq!(codes.len(), 2);
        assert!(
            (codes[0] ^ codes[1]).count_ones() >= 8,
            "pairwise Hamming distance ≥ 8: {codes:x?}"
        );
    }

    #[test]
    fn arithmetic_use_disqualifies() {
        let src = "
fn @status() -> i32 {
entry:
  ret i32 1
}
fn @main() -> i32 {
entry:
  %r = call i32 @status()
  %x = add i32 %r, 1
  ret i32 %x
}
";
        let (m, report) = harden(src);
        assert_eq!(report.returns_rewritten, 0);
        let mut interp = Interpreter::new(&m);
        let r = interp.run("main", &[], &mut |_, _| RtVal::Int(0)).unwrap();
        assert_eq!(r, RtVal::Int(2));
    }

    #[test]
    fn computed_returns_disqualify() {
        let src = "
fn @double(%x: i32) -> i32 {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
fn @main() -> i32 {
entry:
  %r = call i32 @double(21)
  %c = icmp eq i32 %r, 42
  br %c, a, b
a:
  ret i32 1
b:
  ret i32 0
}
";
        let mut m = parse_module(src).unwrap();
        let mut report = Report::default();
        ReturnCodes.run(&mut m, &Config::new(Defenses::RETURNS), &mut report);
        // @double is not a candidate; @main *is* (returns constants, but has
        // no callers — vacuously all uses qualify).
        let f = m.func("double").unwrap();
        assert!(matches!(
            f.value(f.return_values()[0].unwrap()),
            ValueDef::Const { .. } | ValueDef::Instr(_)
        ));
        let text = print_module(&m);
        assert!(text.contains(", 42"), "caller compare unchanged:\n{text}");
    }

    #[test]
    fn compare_against_variable_disqualifies() {
        let src = "
fn @status() -> i32 {
entry:
  ret i32 1
}
fn @main(%x: i32) -> i32 {
entry:
  %r = call i32 @status()
  %c = icmp eq i32 %r, %x
  br %c, a, b
a:
  ret i32 10
b:
  ret i32 20
}
";
        let mut m = parse_module(src).unwrap();
        let mut report = Report::default();
        ReturnCodes.run(&mut m, &Config::new(Defenses::RETURNS), &mut report);
        let f = m.func("status").unwrap();
        let ValueDef::Const { value, .. } = f.value(f.return_values()[0].unwrap()) else {
            panic!()
        };
        assert_eq!(*value, 1, "status must stay untouched");
    }
}
