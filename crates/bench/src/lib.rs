//! # gd-bench — experiment harnesses for every table and figure
//!
//! One module per published artifact of *Glitching Demystified* (DSN 2021):
//!
//! | Module | Regenerates | Binary |
//! |---|---|---|
//! | [`fig2`] | Figure 2 (a–c) | `fig2` |
//! | [`glitch_tables`] | Tables I–III | `table1`, `table2`, `table3` |
//! | [`overhead`] | Tables IV–V | `table4`, `table5` |
//! | [`defense`] | Table VI | `table6` |
//! | `table7` binary | Table VII | `table7` |
//! | `search` binary | §V-B tuning | `search` |
//!
//! Dependency-free timing benches covering the hot paths live in
//! `benches/`, built on the [`timing`] harness.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod defense;
pub mod fig2;
pub mod glitch_tables;
pub mod overhead;
pub mod report;
pub mod timing;
