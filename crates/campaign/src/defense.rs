//! Table VI: the effectiveness of GlitchResistor's defenses against
//! single, long, and windowed-long glitch attacks on real (compiled,
//! hardened) firmware. (Moved here from `gd-bench` so the campaign
//! engine can shard and serve the workload; `gd_bench::defense`
//! re-exports this module.)

use std::fmt::Write as _;

use gd_backend::compile;
use gd_chipwhisperer::{
    full_grid, run_attack, AttackOutcome, AttackSpec, Device, FaultModel, GlitchParams,
    SuccessCheck,
};
use gd_firmware::SUCCESS_MARKER;
use gd_ir::Module;
use glitch_resistor::{harden, Config, Defenses};

/// The three attack shapes of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Single glitch, cycle varied 0..=10 (11 × 9,801 = 107,811 attempts).
    Single,
    /// Long glitch from cycle 0, length 10..=100 step 10 (98,010).
    Long,
    /// 10-cycle window, start varied 0..=10 (107,811).
    Window10,
}

impl Attack {
    /// Attack label as in Table VI.
    pub fn label(self) -> &'static str {
        match self {
            Attack::Single => "Single",
            Attack::Long => "Long",
            Attack::Window10 => "10 Cycles",
        }
    }

    /// The glitch parameter sets this attack sweeps (excluding the grid).
    ///
    /// The paper varies the single-glitch cycle over eleven positions that
    /// span one hardened guard evaluation on its `-Og` build. Our code
    /// generator emits roughly 4x the instructions per IR operation, so the
    /// eleven positions stride by four cycles to cover the same amount of
    /// guard logic; totals stay identical (11 x 9,801 and 10 x 9,801).
    pub fn shapes(self) -> Vec<(u32, u32)> {
        match self {
            Attack::Single => (0..=10).map(|c| (c * 4, 1)).collect(),
            Attack::Long => (1..=10).map(|n| (0, n * 10)).collect(),
            Attack::Window10 => (0..=10).map(|c| (c * 4, 10)).collect(),
        }
    }
}

/// Aggregated results for one (target, defense, attack) cell of Table VI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseCell {
    /// Total attempts.
    pub total: u64,
    /// Successful breaches.
    pub successes: u64,
    /// Detected attempts.
    pub detections: u64,
    /// Crashes/resets.
    pub crashes: u64,
}

impl DefenseCell {
    /// Success rate (percent).
    pub fn success_rate(&self) -> f64 {
        100.0 * self.successes as f64 / self.total.max(1) as f64
    }

    /// Detection rate: det / (det + suc), as the paper defines it.
    pub fn detection_rate(&self) -> f64 {
        let d = self.detections + self.successes;
        if d == 0 {
            0.0
        } else {
            100.0 * self.detections as f64 / d as f64
        }
    }
}

/// Hardens `module` with `defenses` and compiles it to an attack target.
///
/// # Panics
///
/// Panics if the firmware fails to harden or lower — these are fixtures.
pub fn hardened_device(module: &Module, defenses: Defenses) -> Device {
    let mut m = module.clone();
    harden(&mut m, &Config::new(defenses));
    let image = compile(&m, "main").expect("hardened firmware lowers");
    Device::from_image(&image)
}

/// Determines a per-attempt cycle budget: boot-to-trigger plus slack for
/// the glitch window and the detection path.
pub fn budget_for(device: &Device) -> u64 {
    let mut pipe = device.boot();
    pipe.run(2_000_000);
    let trigger = pipe.trigger_cycle().unwrap_or(0);
    trigger + 4_000
}

/// Runs one Table VI cell: every attack shape × the full 99×99 grid,
/// threading NVM (the delay seed) across attempts like a real campaign
/// against one physical board.
pub fn run_cell(device: &Device, model: &FaultModel, attack: Attack) -> DefenseCell {
    let spec = AttackSpec {
        success: SuccessCheck::HaltWithR0(SUCCESS_MARKER),
        max_cycles: budget_for(device),
    };
    let grid = full_grid();
    let mut cell = DefenseCell::default();
    let mut nvm: Vec<u8> = Vec::new();
    let mut boot = 0u64;
    for (start, repeat) in attack.shapes() {
        for &(width, offset) in &grid {
            boot += 1;
            cell.total += 1;
            if model.severity(width, offset) == 0.0 {
                continue; // cannot fault; the board would boot and idle
            }
            let params = GlitchParams { ext_offset: start, repeat, width, offset };
            let attempt = run_attack(device, model, params, boot, &spec, Some(&mut nvm));
            match attempt.outcome {
                AttackOutcome::Success => cell.successes += 1,
                AttackOutcome::Detected => cell.detections += 1,
                AttackOutcome::Crash | AttackOutcome::Reset => cell.crashes += 1,
                AttackOutcome::NoEffect => {}
            }
        }
    }
    cell
}

/// One Table VI block: a target under All and All\Delay, three attacks.
pub struct Table6Block {
    /// Target name.
    pub target: &'static str,
    /// Rows: (attack, defenses label, cell).
    pub rows: Vec<(Attack, &'static str, DefenseCell)>,
}

/// Runs the full Table VI.
///
/// Each (attack, defense-set) cell is an independent ~100k-attempt
/// campaign, so the six cells per target fan out across [`gd_exec`]
/// workers. *Within* a cell, [`run_cell`] stays strictly serial: it
/// threads NVM (the random-delay seed) from attempt to attempt like a
/// campaign against one physical board, a cross-attempt dependency that
/// cannot be partitioned. Row order is fixed, so output is byte-identical
/// to the serial driver.
pub fn table6(model: &FaultModel) -> Vec<Table6Block> {
    let attacks = [Attack::Single, Attack::Long, Attack::Window10];
    gd_firmware::table6_targets()
        .into_iter()
        .map(|(target, module)| {
            let all = hardened_device(&module, Defenses::ALL);
            let nodelay = hardened_device(&module, Defenses::ALL_EXCEPT_DELAY);
            let cells: Vec<(Attack, &'static str, &Device)> = attacks
                .iter()
                .flat_map(|&attack| [(attack, "All", &all), (attack, "All\\Delay", &nodelay)])
                .collect();
            let rows = gd_exec::par_map(&cells, |&(attack, label, device)| {
                (attack, label, run_cell(device, model, attack))
            });
            Table6Block { target, rows }
        })
        .collect()
}

/// Renders one Table VI block in the paper's layout.
pub fn render_table6_block(block: &Table6Block) -> String {
    let mut out = crate::report::heading_str(&format!("Table VI — defenses vs {}", block.target));
    writeln!(
        out,
        "{:<10} {:<10} {:>9} {:>10} {:>12} {:>11} {:>10}",
        "Attack", "Defenses", "Total", "Successes", "Succ. rate", "Detections", "Det. rate"
    )
    .unwrap();
    for (attack, cfg, cell) in &block.rows {
        writeln!(
            out,
            "{:<10} {:<10} {:>9} {:>10} {:>11.5}% {:>11} {:>9.1}%",
            attack.label(),
            cfg,
            cell.total,
            cell.successes,
            cell.success_rate(),
            cell.detections,
            cell.detection_rate()
        )
        .unwrap();
    }
    out
}

/// Renders the full Table VI.
pub fn render_table6(blocks: &[Table6Block]) -> String {
    blocks.iter().map(render_table6_block).collect()
}

/// Prints Table VI (legacy CLI surface over [`render_table6`]).
pub fn print_table6(blocks: &[Table6Block]) {
    print!("{}", render_table6(blocks));
}

/// The unprotected baseline for the same targets (contextual row).
pub fn unprotected_cell(module: &Module, model: &FaultModel, attack: Attack) -> DefenseCell {
    let image = compile(module, "main").expect("firmware lowers");
    let device = Device::from_image(&image);
    run_cell(&device, model, attack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_shapes_match_the_papers_totals() {
        assert_eq!(Attack::Single.shapes().len() * 9801, 107_811);
        assert_eq!(Attack::Long.shapes().len() * 9801, 98_010);
        assert_eq!(Attack::Window10.shapes().len() * 9801, 107_811);
    }

    /// A reduced single-glitch campaign (1-D slice through the strongest
    /// violation lobe) — the full 107,811-attempt sweep lives in the
    /// `table6` binary.
    fn mini_campaign(device: &Device, model: &FaultModel) -> DefenseCell {
        let spec = AttackSpec {
            success: SuccessCheck::HaltWithR0(gd_firmware::SUCCESS_MARKER),
            max_cycles: budget_for(device),
        };
        let mut cell = DefenseCell::default();
        let mut boot = 0u64;
        for cycle in 0..40u32 {
            for (w, o) in [(12i8, -18i8), (11, -17), (13, -19), (-34, 22), (-35, 23)] {
                boot += 1;
                cell.total += 1;
                let attempt =
                    run_attack(device, model, GlitchParams::single(cycle, w, o), boot, &spec, None);
                match attempt.outcome {
                    AttackOutcome::Success => cell.successes += 1,
                    AttackOutcome::Detected => cell.detections += 1,
                    AttackOutcome::Crash | AttackOutcome::Reset => cell.crashes += 1,
                    AttackOutcome::NoEffect => {}
                }
            }
        }
        cell
    }

    #[test]
    fn defenses_crush_single_glitch_success_on_the_guard() {
        let model = FaultModel::default();
        let module = gd_firmware::while_not_a();
        let plain = compile(&module, "main").expect("firmware lowers");
        let unprotected = mini_campaign(&Device::from_image(&plain), &model);
        let protected =
            mini_campaign(&hardened_device(&module, Defenses::ALL_EXCEPT_DELAY), &model);
        assert!(unprotected.successes > 0, "the bare guard is glitchable");
        assert!(
            protected.successes * 3 <= unprotected.successes,
            "hardening cuts single-glitch successes sharply: {} vs {}",
            protected.successes,
            unprotected.successes
        );
        assert!(
            protected.detections > protected.successes,
            "most surviving faults are detected ({} det vs {} suc)",
            protected.detections,
            protected.successes
        );
    }
}
