//! Extension experiment: Figure 2's exhaustive sweep applied to whole
//! instruction *classes* (ALU, compare, load, store), testing the paper's
//! §V observation — memory operations are far more fault-prone than pure
//! register manipulation — at the encoding level. `--check` diffs the
//! output against `results/fig2_ext.txt`.

use std::process::ExitCode;

use gd_emu::Config;
use gd_glitch_emu::ext::instruction_classes;
use gd_glitch_emu::{Direction, Outcome};

fn regenerate() {
    gd_bench::report::heading("Extension — instruction-class skippability (1→0 flips)");
    println!(
        "{:<10} {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "class", "instruction", "skip%", "badmem%", "invalid%", "failed%", "noeff%"
    );
    for case in instruction_classes() {
        let t = case.sweep(Direction::And, Config::default());
        let total = t.total().max(1) as f64;
        let pct = |o: Outcome| 100.0 * t.count(o) as f64 / total;
        println!(
            "{:<10} {:<16} {:>7.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            case.name,
            case.text,
            pct(Outcome::Success),
            pct(Outcome::BadRead) + pct(Outcome::BadFetch),
            pct(Outcome::InvalidInstruction),
            pct(Outcome::Failed),
            pct(Outcome::NoEffect),
        );
    }
    println!(
        "\n(\"skip\" = execution completed but the instruction's effect is missing;\n\
         note how memory classes trade skips for faults, as in the paper's §V)"
    );
}

fn main() -> ExitCode {
    gd_bench::selfcheck::main("fig2_ext.txt", &[], regenerate)
}
