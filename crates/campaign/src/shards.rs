//! Sharding: how a [`CampaignSpec`](crate::spec::CampaignSpec) decomposes
//! into deterministic, independently runnable chunks, and how completed
//! chunks merge back — in input order — into the exact text the legacy
//! serial binaries print.
//!
//! The shard boundaries follow the cross-attempt dependency structure of
//! each workload: a Figure 2 shard is one (panel, branch) sweep; a Table
//! I–III shard is one full 99×99 grid cell (whose attempts carry their
//! *absolute* position in the full scan, so per-boot noise seeding is
//! identical to the monolithic run); a Table VI shard is one (target,
//! attack, defense-set) campaign, which threads NVM state internally and
//! is therefore indivisible.

use std::collections::BTreeMap;

use gd_chipwhisperer::{scan_cell, scan_multi_cell, targets, CellCounts, Device, MultiCell};
use gd_emu::Config;
use gd_glitch_emu::{branch_case, sweep_case_with, SweepResult, Tally};
use gd_thumb::Cond;
use glitch_resistor::Defenses;

use crate::defense::{self, Attack, DefenseCell, Table6Block};
use crate::fig2::{panel_configs, Panel};
use crate::glitch_tables::{
    cycle_annotations, doubled_spec, guard_spec, post_mortem_reg, Table1Row, Table2Row, Table3Row,
};
use crate::json::Json;
use crate::spec::{doubled_guards, CampaignSpec, Workload};

/// The Table VI attack shapes in row order.
const ATTACKS: [Attack; 3] = [Attack::Single, Attack::Long, Attack::Window10];

/// The Table VI defense sets in column order: label and configuration.
const DEFENSE_SETS: [(&str, Defenses); 2] =
    [("All", Defenses::ALL), ("All\\Delay", Defenses::ALL_EXCEPT_DELAY)];

/// One unit of campaign work. Every variant is pure and self-contained:
/// two engines (or two machines) given the same spec and shard index
/// produce identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardWork {
    /// One Figure 2 sweep: `panel` indexes [`panel_configs`], `cond`
    /// indexes [`Cond::ALL`].
    Sweep {
        /// Panel index.
        panel: usize,
        /// Branch-condition index.
        cond: usize,
    },
    /// One Table I grid cell: guard × glitch cycle.
    Table1Cell {
        /// Index into [`targets::table1_guards`].
        guard: usize,
        /// Glitch cycle scanned.
        cycle: u32,
        /// The cell's position in the guard's full scan (seeds per-boot
        /// noise; see [`scan_cell`]).
        cycle_index: u64,
    },
    /// One Table II multi-glitch cell: doubled guard × glitch cycle.
    Table2Cell {
        /// Index into [`doubled_guards`].
        guard: usize,
        /// Glitch cycle scanned.
        cycle: u32,
        /// The cell's position in the guard's full scan.
        cycle_index: u64,
    },
    /// One Table III long-glitch cell: doubled guard × glitch length.
    Table3Cell {
        /// Index into [`doubled_guards`].
        guard: usize,
        /// Glitch length in cycles.
        len: u32,
    },
    /// One Table VI campaign cell: target × attack × defense set.
    Table6Cell {
        /// Index into [`gd_firmware::table6_targets`].
        target: usize,
        /// Index into the attack-shape row order (Single, Long, 10 Cycles).
        attack: usize,
        /// Index into the defense-set column order (All, All\Delay).
        defense: usize,
    },
    /// One first-order multifault campaign: every pruned class of one
    /// registry fault model over `firmware::boot`.
    MultifaultModel {
        /// Index into [`gd_faultsim::Registry::standard`].
        model: usize,
    },
    /// One second-order multifault bucket: the distinct-site
    /// representative pairs whose linear index falls in this bucket
    /// (mod [`gd_faultsim::O2_BUCKETS`]).
    MultifaultPairs {
        /// Bucket index.
        bucket: u32,
    },
}

impl ShardWork {
    /// A short human-readable label (progress displays, logs).
    pub fn label(&self) -> String {
        match *self {
            ShardWork::Sweep { panel, cond } => {
                let name = panel_configs().get(panel).map(|(l, _, _)| *l).unwrap_or("?");
                format!("fig2/{name}/{}", Cond::ALL[cond % Cond::ALL.len()])
            }
            ShardWork::Table1Cell { guard, cycle, .. } => {
                format!("table1/guard{guard}/cycle{cycle}")
            }
            ShardWork::Table2Cell { guard, cycle, .. } => {
                format!("table2/guard{guard}/cycle{cycle}")
            }
            ShardWork::Table3Cell { guard, len } => format!("table3/guard{guard}/len{len}"),
            ShardWork::Table6Cell { target, attack, defense } => {
                format!(
                    "table6/target{target}/{}/{}",
                    ATTACKS[attack].label(),
                    DEFENSE_SETS[defense].0
                )
            }
            ShardWork::MultifaultModel { model } => {
                let names = gd_faultsim::Registry::standard().names();
                format!("multifault/{}", names.get(model).copied().unwrap_or("?"))
            }
            ShardWork::MultifaultPairs { bucket } => format!("multifault/pairs/bucket{bucket}"),
        }
    }
}

/// The full, deterministic shard plan of a spec's workload — the entire
/// parameter space, **ignoring** `spec.shards` (the engine slices the
/// plan by that range). Plan order is the legacy binaries' output order.
pub fn shard_plan(spec: &CampaignSpec) -> Vec<ShardWork> {
    let mut plan = Vec::new();
    match spec.workload {
        Workload::Fig2 => {
            for panel in 0..panel_configs().len() {
                for cond in 0..Cond::ALL.len() {
                    plan.push(ShardWork::Sweep { panel, cond });
                }
            }
        }
        Workload::Table1 { cycles: (lo, hi) } => {
            for guard in 0..targets::table1_guards().len() {
                for (i, cycle) in (lo..hi).enumerate() {
                    plan.push(ShardWork::Table1Cell { guard, cycle, cycle_index: i as u64 });
                }
            }
        }
        Workload::Table2 { cycles: (lo, hi) } => {
            for guard in 0..doubled_guards().len() {
                for (i, cycle) in (lo..hi).enumerate() {
                    plan.push(ShardWork::Table2Cell { guard, cycle, cycle_index: i as u64 });
                }
            }
        }
        Workload::Table3 { lens: (lo, hi) } => {
            for guard in 0..doubled_guards().len() {
                for len in lo..hi {
                    plan.push(ShardWork::Table3Cell { guard, len });
                }
            }
        }
        Workload::Table6 => {
            for target in 0..gd_firmware::table6_targets().len() {
                for attack in 0..ATTACKS.len() {
                    for defense in 0..DEFENSE_SETS.len() {
                        plan.push(ShardWork::Table6Cell { target, attack, defense });
                    }
                }
            }
        }
        Workload::Multifault => {
            for model in 0..gd_faultsim::Registry::standard().len() {
                plan.push(ShardWork::MultifaultModel { model });
            }
            for bucket in 0..gd_faultsim::O2_BUCKETS {
                plan.push(ShardWork::MultifaultPairs { bucket });
            }
        }
    }
    plan
}

/// The result of one shard, ready to merge and to serialize.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResult {
    /// A Figure 2 per-branch sweep.
    Sweep(SweepResult),
    /// A Table I or III grid cell, tagged with its cycle (I) or length
    /// (III) for the row position.
    Cell {
        /// Glitch cycle (Table I) or glitch length (Table III).
        at: u32,
        /// Outcome counts with post-mortems.
        cell: CellCounts,
    },
    /// A Table II multi-glitch cell.
    Multi {
        /// Glitch cycle.
        at: u32,
        /// Partial/full counts.
        cell: MultiCell,
    },
    /// A Table VI campaign cell.
    Defense(DefenseCell),
    /// A multifault shard (order-1 model or order-2 pair bucket):
    /// weighted outcome tally plus the pruning ledger.
    Multifault {
        /// Weighted trial outcomes over the shard's whole candidate
        /// space, in [`gd_glitch_emu::Outcome::ALL`] order.
        tally: Tally,
        /// Raw candidates (or candidate pairs) the shard covers.
        enumerated: u64,
        /// Candidates resolved without simulation.
        pruned: u64,
        /// Trials actually simulated.
        simulated: u64,
    },
}

/// Runs one shard of `spec`'s workload. Pure: depends only on the spec's
/// fault model and the shard description.
///
/// # Panics
///
/// Panics if the shard indexes outside the workload's fixture space
/// (a plan/spec mismatch — engine bug, not user input).
pub fn run_shard(spec: &CampaignSpec, work: &ShardWork) -> ShardResult {
    let model = spec.model.model();
    match *work {
        ShardWork::Sweep { panel, cond } => {
            let (_, direction, cfg): (&str, _, Config) = panel_configs()[panel];
            let case = branch_case(Cond::ALL[cond]);
            // One micro-op table per test case, shared by all 17 k-sweeps
            // (and their worker chunks) of this shard.
            let image = case.predecode(cfg);
            ShardResult::Sweep(sweep_case_with(&case, &image, direction, cfg))
        }
        ShardWork::Table1Cell { guard, cycle, cycle_index } => {
            let (name, src) = targets::table1_guards()[guard];
            let dev = Device::from_asm(src).expect("guard assembles");
            let reg = post_mortem_reg(name);
            let cell = scan_cell(&dev, &model, cycle, cycle_index, 1, &guard_spec(), Some(reg));
            ShardResult::Cell { at: cycle, cell }
        }
        ShardWork::Table2Cell { guard, cycle, cycle_index } => {
            let (_, src) = &doubled_guards()[guard];
            let dev = Device::from_asm(src).expect("guard assembles");
            let cell = scan_multi_cell(&dev, &model, cycle, cycle_index, &doubled_spec());
            ShardResult::Multi { at: cycle, cell }
        }
        ShardWork::Table3Cell { guard, len } => {
            let (_, src) = &doubled_guards()[guard];
            let dev = Device::from_asm(src).expect("guard assembles");
            // Every length is an independent scan from cycle 0, so each
            // cell sits at position 0 of its own scan (matches the legacy
            // per-length `scan_grid(.., 0..1, len, ..)` numbering).
            let cell = scan_cell(&dev, &model, 0, 0, len, &doubled_spec(), None);
            ShardResult::Cell { at: len, cell }
        }
        ShardWork::Table6Cell { target, attack, defense } => {
            let (_, module) = gd_firmware::table6_targets().swap_remove(target);
            let device = defense::hardened_device(&module, DEFENSE_SETS[defense].1);
            ShardResult::Defense(defense::run_cell(&device, &model, ATTACKS[attack]))
        }
        ShardWork::MultifaultModel { model } => {
            let (tally, stats) = gd_faultsim::order1_shard(model);
            ShardResult::Multifault {
                tally,
                enumerated: stats.enumerated,
                pruned: stats.pruned,
                simulated: stats.simulated,
            }
        }
        ShardWork::MultifaultPairs { bucket } => {
            let (tally, stats) = gd_faultsim::order2_shard(bucket);
            ShardResult::Multifault {
                tally,
                enumerated: stats.enumerated,
                pruned: stats.pruned,
                simulated: stats.simulated,
            }
        }
    }
}

impl ShardResult {
    /// The shard result as a self-describing JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            ShardResult::Sweep(s) => Json::obj(vec![
                ("type", Json::Str("sweep".into())),
                ("name", Json::Str(s.name.clone())),
                (
                    "per_k",
                    Json::Arr(
                        s.per_k
                            .iter()
                            .map(|t| {
                                Json::Arr(t.counts().iter().map(|&c| Json::Int(c.into())).collect())
                            })
                            .collect(),
                    ),
                ),
            ]),
            ShardResult::Cell { at, cell } => Json::obj(vec![
                ("type", Json::Str("cell".into())),
                ("at", Json::Int((*at).into())),
                ("attempts", Json::Int(cell.attempts.into())),
                ("successes", Json::Int(cell.successes.into())),
                ("detections", Json::Int(cell.detections.into())),
                ("crashes", Json::Int(cell.crashes.into())),
                ("resets", Json::Int(cell.resets.into())),
                (
                    "post_mortem",
                    Json::Arr(
                        cell.post_mortem
                            .iter()
                            .map(|(&v, &n)| {
                                Json::Arr(vec![Json::Int(v.into()), Json::Int(n.into())])
                            })
                            .collect(),
                    ),
                ),
            ]),
            ShardResult::Multi { at, cell } => Json::obj(vec![
                ("type", Json::Str("multi".into())),
                ("at", Json::Int((*at).into())),
                ("attempts", Json::Int(cell.attempts.into())),
                ("partial", Json::Int(cell.partial.into())),
                ("full", Json::Int(cell.full.into())),
            ]),
            ShardResult::Defense(cell) => Json::obj(vec![
                ("type", Json::Str("defense".into())),
                ("total", Json::Int(cell.total.into())),
                ("successes", Json::Int(cell.successes.into())),
                ("detections", Json::Int(cell.detections.into())),
                ("crashes", Json::Int(cell.crashes.into())),
            ]),
            ShardResult::Multifault { tally, enumerated, pruned, simulated } => Json::obj(vec![
                ("type", Json::Str("multifault".into())),
                (
                    "counts",
                    Json::Arr(tally.counts().iter().map(|&c| Json::Int(c.into())).collect()),
                ),
                ("enumerated", Json::Int((*enumerated).into())),
                ("pruned", Json::Int((*pruned).into())),
                ("simulated", Json::Int((*simulated).into())),
            ]),
        }
    }

    /// Parses a shard result back from [`ShardResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<ShardResult, String> {
        let u = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("shard result: missing integer field `{name}`"))
        };
        let kind = v.get("type").and_then(Json::as_str).ok_or("shard result: missing `type`")?;
        match kind {
            "sweep" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("sweep shard: missing `name`")?
                    .to_owned();
                let rows =
                    v.get("per_k").and_then(Json::as_arr).ok_or("sweep shard: missing `per_k`")?;
                let mut per_k = Vec::with_capacity(rows.len());
                for row in rows {
                    let items = row.as_arr().ok_or("sweep shard: per_k row not an array")?;
                    if items.len() != 6 {
                        return Err("sweep shard: per_k row must hold 6 counts".into());
                    }
                    let mut counts = [0u64; 6];
                    for (slot, item) in counts.iter_mut().zip(items) {
                        *slot = item.as_u64().ok_or("sweep shard: per_k count not a u64")?;
                    }
                    per_k.push(Tally::from_counts(counts));
                }
                Ok(ShardResult::Sweep(SweepResult { name, per_k }))
            }
            "cell" => {
                let mut post_mortem = BTreeMap::new();
                let pairs = v
                    .get("post_mortem")
                    .and_then(Json::as_arr)
                    .ok_or("cell shard: missing `post_mortem`")?;
                for pair in pairs {
                    let items = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or("cell shard: post_mortem entries must be [value, count] pairs")?;
                    let value = items[0]
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or("cell shard: post_mortem value not a u32")?;
                    let count =
                        items[1].as_u64().ok_or("cell shard: post_mortem count not a u64")?;
                    post_mortem.insert(value, count);
                }
                Ok(ShardResult::Cell {
                    at: u32::try_from(u("at")?).map_err(|_| "cell shard: `at` not a u32")?,
                    cell: CellCounts {
                        attempts: u("attempts")?,
                        successes: u("successes")?,
                        detections: u("detections")?,
                        crashes: u("crashes")?,
                        resets: u("resets")?,
                        post_mortem,
                    },
                })
            }
            "multi" => Ok(ShardResult::Multi {
                at: u32::try_from(u("at")?).map_err(|_| "multi shard: `at` not a u32")?,
                cell: MultiCell {
                    attempts: u("attempts")?,
                    partial: u("partial")?,
                    full: u("full")?,
                },
            }),
            "defense" => Ok(ShardResult::Defense(DefenseCell {
                total: u("total")?,
                successes: u("successes")?,
                detections: u("detections")?,
                crashes: u("crashes")?,
            })),
            "multifault" => {
                let items = v
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or("multifault shard: missing `counts`")?;
                if items.len() != 6 {
                    return Err("multifault shard: `counts` must hold 6 entries".into());
                }
                let mut counts = [0u64; 6];
                for (slot, item) in counts.iter_mut().zip(items) {
                    *slot = item.as_u64().ok_or("multifault shard: count not a u64")?;
                }
                Ok(ShardResult::Multifault {
                    tally: Tally::from_counts(counts),
                    enumerated: u("enumerated")?,
                    pruned: u("pruned")?,
                    simulated: u("simulated")?,
                })
            }
            other => Err(format!("shard result: unknown type {other:?}")),
        }
    }
}

/// Merges completed shards — `(work, result)` pairs in plan order — into
/// the workload's report text.
///
/// A **full** campaign renders byte-identically to the legacy serial
/// binary. A **partial** campaign (a shard sub-range) renders the units
/// it completed: Figure 2 panels and Table I/VI blocks appear with only
/// their finished rows, while the columnar Tables II/III keep only the
/// cycle/length rows completed for *every* present guard column (the
/// JSON result always carries every completed shard regardless).
///
/// # Errors
///
/// Returns a message when a result's variant contradicts its work item
/// (corrupt checkpoint or store).
pub fn render(spec: &CampaignSpec, shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    match spec.workload {
        Workload::Fig2 => render_fig2(shards),
        Workload::Table1 { cycles } => render_table1(shards, cycles.1),
        Workload::Table2 { .. } => render_table2(shards),
        Workload::Table3 { .. } => render_table3(shards),
        Workload::Table6 => render_table6(shards),
        Workload::Multifault => crate::multifault::render_multifault(shards),
    }
}

fn mismatch(work: &ShardWork) -> String {
    format!("shard {} carries a result of the wrong type", work.label())
}

fn render_fig2(shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    let configs = panel_configs();
    let mut panels: Vec<Panel> =
        configs.iter().map(|(label, _, _)| Panel { label, sweeps: Vec::new() }).collect();
    for (work, result) in shards {
        match (work, result) {
            (ShardWork::Sweep { panel, .. }, ShardResult::Sweep(s)) => {
                panels[*panel].sweeps.push(s.clone());
            }
            _ => return Err(mismatch(work)),
        }
    }
    Ok(panels.iter().filter(|p| !p.sweeps.is_empty()).map(crate::fig2::render_panel).collect())
}

fn render_table1(shards: &[(ShardWork, ShardResult)], cycles_hi: u32) -> Result<String, String> {
    let guards = targets::table1_guards();
    let mut rows: Vec<Table1Row> =
        guards.iter().map(|(name, _)| Table1Row { name, cells: Vec::new() }).collect();
    for (work, result) in shards {
        match (work, result) {
            (ShardWork::Table1Cell { guard, .. }, ShardResult::Cell { at, cell }) => {
                rows[*guard].cells.push((*at, cell.clone()));
            }
            _ => return Err(mismatch(work)),
        }
    }
    let mut out = String::new();
    for (row, (_, src)) in rows.iter().zip(&guards) {
        if row.cells.is_empty() {
            continue;
        }
        let dev = Device::from_asm(src).map_err(|e| format!("guard assembles: {e}"))?;
        let notes = cycle_annotations(&dev, cycles_hi);
        out.push_str(&crate::glitch_tables::render_table1_row(row, &notes));
    }
    Ok(out)
}

/// Keeps, per present guard column, only the row positions every column
/// completed — the columnar tables print one line per shared position.
fn rectangular<T: Clone>(
    rows: Vec<(usize, &'static str, Vec<(u32, T)>)>,
) -> Vec<(&'static str, Vec<(u32, T)>)> {
    let present: Vec<_> = rows.into_iter().filter(|(_, _, cells)| !cells.is_empty()).collect();
    let mut shared: Vec<u32> = match present.first() {
        None => return Vec::new(),
        Some((_, _, cells)) => cells.iter().map(|(at, _)| *at).collect(),
    };
    for (_, _, cells) in &present[1..] {
        let theirs: Vec<u32> = cells.iter().map(|(at, _)| *at).collect();
        shared.retain(|at| theirs.contains(at));
    }
    present
        .into_iter()
        .map(|(_, name, cells)| {
            (name, cells.into_iter().filter(|(at, _)| shared.contains(at)).collect())
        })
        .collect()
}

fn render_table2(shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    let guards = doubled_guards();
    let mut rows: Vec<(usize, &'static str, Vec<(u32, MultiCell)>)> =
        guards.iter().enumerate().map(|(i, (name, _))| (i, *name, Vec::new())).collect();
    for (work, result) in shards {
        match (work, result) {
            (ShardWork::Table2Cell { guard, .. }, ShardResult::Multi { at, cell }) => {
                rows[*guard].2.push((*at, cell.clone()));
            }
            _ => return Err(mismatch(work)),
        }
    }
    let rows: Vec<Table2Row> =
        rectangular(rows).into_iter().map(|(name, cells)| Table2Row { name, cells }).collect();
    if rows.iter().all(|r| r.cells.is_empty()) {
        return Ok(String::new());
    }
    Ok(crate::glitch_tables::render_table2(&rows))
}

fn render_table3(shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    let guards = doubled_guards();
    let mut rows: Vec<(usize, &'static str, Vec<(u32, CellCounts)>)> =
        guards.iter().enumerate().map(|(i, (name, _))| (i, *name, Vec::new())).collect();
    for (work, result) in shards {
        match (work, result) {
            (ShardWork::Table3Cell { guard, .. }, ShardResult::Cell { at, cell }) => {
                rows[*guard].2.push((*at, cell.clone()));
            }
            _ => return Err(mismatch(work)),
        }
    }
    let rows: Vec<Table3Row> =
        rectangular(rows).into_iter().map(|(name, cells)| Table3Row { name, cells }).collect();
    if rows.iter().all(|r| r.cells.is_empty()) {
        return Ok(String::new());
    }
    Ok(crate::glitch_tables::render_table3(&rows))
}

fn render_table6(shards: &[(ShardWork, ShardResult)]) -> Result<String, String> {
    let targets = gd_firmware::table6_targets();
    let mut blocks: Vec<Table6Block> =
        targets.iter().map(|(target, _)| Table6Block { target, rows: Vec::new() }).collect();
    for (work, result) in shards {
        match (work, result) {
            (ShardWork::Table6Cell { target, attack, defense }, ShardResult::Defense(cell)) => {
                blocks[*target].rows.push((ATTACKS[*attack], DEFENSE_SETS[*defense].0, *cell));
            }
            _ => return Err(mismatch(work)),
        }
    }
    Ok(blocks
        .iter()
        .filter(|b| !b.rows.is_empty())
        .map(crate::defense::render_table6_block)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shapes_cover_the_published_parameter_spaces() {
        assert_eq!(shard_plan(&CampaignSpec::fig2()).len(), 4 * 14);
        assert_eq!(shard_plan(&CampaignSpec::table1()).len(), 3 * 8);
        assert_eq!(shard_plan(&CampaignSpec::table2()).len(), 3 * 8);
        assert_eq!(shard_plan(&CampaignSpec::table3()).len(), 3 * 11);
        assert_eq!(shard_plan(&CampaignSpec::table6()).len(), 2 * 3 * 2);
        // 6 registry models + 8 pair buckets.
        assert_eq!(shard_plan(&CampaignSpec::multifault()).len(), 6 + 8);
    }

    #[test]
    fn plan_order_is_row_major_and_carries_absolute_positions() {
        let plan = shard_plan(&CampaignSpec::table1());
        assert_eq!(plan[0], ShardWork::Table1Cell { guard: 0, cycle: 0, cycle_index: 0 });
        assert_eq!(plan[7], ShardWork::Table1Cell { guard: 0, cycle: 7, cycle_index: 7 });
        assert_eq!(plan[8], ShardWork::Table1Cell { guard: 1, cycle: 0, cycle_index: 0 });
        let plan3 = shard_plan(&CampaignSpec::table3());
        assert_eq!(plan3[0], ShardWork::Table3Cell { guard: 0, len: 10 });
        assert_eq!(plan3[11], ShardWork::Table3Cell { guard: 1, len: 10 });
    }

    #[test]
    fn sub_ranged_specs_keep_absolute_cycle_indices() {
        // Cycles [3, 8): the legacy binary would enumerate these with
        // indices 0..5, and the shard plan must agree.
        let mut spec = CampaignSpec::table1();
        spec.workload = Workload::Table1 { cycles: (3, 8) };
        let plan = shard_plan(&spec);
        assert_eq!(plan[0], ShardWork::Table1Cell { guard: 0, cycle: 3, cycle_index: 0 });
        assert_eq!(plan[4], ShardWork::Table1Cell { guard: 0, cycle: 7, cycle_index: 4 });
    }

    #[test]
    fn shard_results_round_trip_through_json() {
        let mut post_mortem = BTreeMap::new();
        post_mortem.insert(0xD3B9_AEC6u32, 17u64);
        post_mortem.insert(1, 2);
        let samples = vec![
            ShardResult::Sweep(SweepResult {
                name: "beq".into(),
                per_k: (0..17).map(|k| Tally::from_counts([k, 0, 1, 2, 3, 4])).collect(),
            }),
            ShardResult::Cell {
                at: 7,
                cell: CellCounts {
                    attempts: 9801,
                    successes: 12,
                    detections: 0,
                    crashes: 3,
                    resets: 1,
                    post_mortem,
                },
            },
            ShardResult::Multi { at: 2, cell: MultiCell { attempts: 9801, partial: 5, full: 1 } },
            ShardResult::Defense(DefenseCell {
                total: 107_811,
                successes: 4,
                detections: 96,
                crashes: 1_000,
            }),
            ShardResult::Multifault {
                tally: Tally::from_counts([3, 1000, 5, 7, 11, 13]),
                enumerated: 22_016,
                pruned: 21_000,
                simulated: 1_016,
            },
        ];
        for sample in samples {
            let text = sample.to_json().to_string_compact().unwrap();
            let back = ShardResult::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, sample, "through {text}");
        }
    }

    #[test]
    fn corrupt_shard_json_errors_cleanly() {
        for text in [
            r#"{"type":"nope"}"#,
            r#"{"at":3}"#,
            r#"{"type":"cell","at":3}"#,
            r#"{"type":"sweep","name":"beq","per_k":[[1,2,3]]}"#,
            r#"{"type":"multi","at":-1,"attempts":1,"partial":0,"full":0}"#,
        ] {
            let v = crate::json::parse(text).unwrap();
            assert!(ShardResult::from_json(&v).is_err(), "{text} must be rejected");
        }
    }

    #[test]
    fn mismatched_work_and_result_is_an_error() {
        let spec = CampaignSpec::table1();
        let plan = shard_plan(&spec);
        let wrong = vec![(plan[0], ShardResult::Defense(DefenseCell::default()))];
        assert!(render(&spec, &wrong).is_err());
    }

    #[test]
    fn partial_columnar_renders_keep_only_shared_rows() {
        // Guard 0 finished cycles {0, 1}; guard 1 only {1}. The printed
        // table must keep the shared cycle-1 row for both columns.
        let mut spec = CampaignSpec::table2();
        spec.workload = Workload::Table2 { cycles: (0, 2) };
        let mk = |at| ShardResult::Multi {
            at,
            cell: MultiCell { attempts: 9801, partial: u64::from(at), full: 0 },
        };
        let shards = vec![
            (ShardWork::Table2Cell { guard: 0, cycle: 0, cycle_index: 0 }, mk(0)),
            (ShardWork::Table2Cell { guard: 0, cycle: 1, cycle_index: 1 }, mk(1)),
            (ShardWork::Table2Cell { guard: 1, cycle: 1, cycle_index: 1 }, mk(1)),
        ];
        let text = render(&spec, &shards).unwrap();
        assert!(text.contains("while(!a)") && text.contains("while(a)"), "{text}");
        let rows: Vec<&str> =
            text.lines().filter(|l| l.starts_with('0') || l.starts_with('1')).collect();
        assert_eq!(rows.len(), 1, "only the shared cycle survives:\n{text}");
        assert!(rows[0].starts_with('1'), "{text}");
    }
}
