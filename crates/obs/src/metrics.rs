//! The metric registry: named families of counters, gauges, and
//! log2-bucket histograms, each series addressed by a label set.
//!
//! Updates are single relaxed atomic operations; registration (name +
//! label lookup under a mutex) is the only slow path, so hot code
//! registers once — typically in a `OnceLock` static — and clones the
//! returned `Arc` handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram bucket bounds: `2^0 .. 2^30`.
pub const FINITE_BUCKETS: usize = 31;

/// A histogram over non-negative integer observations (pick one unit —
/// ms, us, bytes — and encode it in the metric name) with fixed log2
/// bucket upper bounds `1, 2, 4, …, 2^30` plus `+Inf`. Two relaxed
/// atomic adds per observation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; FINITE_BUCKETS + 1],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// The index of the smallest bucket whose upper bound holds `v`
/// (`FINITE_BUCKETS` = the `+Inf` bucket).
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    // ceil(log2(v)) for v >= 2; values past 2^30 land in +Inf.
    let exp = (64 - (v - 1).leading_zeros()) as usize;
    exp.min(FINITE_BUCKETS)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative per-bucket counts (the last entry is `+Inf`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// The finite bucket upper bounds, in order.
    pub fn bounds() -> impl Iterator<Item = u64> {
        (0..FINITE_BUCKETS as u32).map(|i| 1u64 << i)
    }
}

/// What a family's series hold. Kind mismatches on re-registration are
/// programmer errors and panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter (name should end in `_total`).
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log2-bucket histogram.
    Histogram,
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) kind: Kind,
    pub(crate) help: String,
    /// Keyed by the rendered `{label="value",…}` string so exposition
    /// order is deterministic.
    series: BTreeMap<String, Series>,
}

/// A set of metric families. Most code uses the process-wide [`global`]
/// registry; tests construct private ones.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set as it appears in the exposition format:
/// `{a="x",b="y"}`, or the empty string for no labels. Values are
/// escaped per the Prometheus text format.
pub(crate) fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry { families: Mutex::new(BTreeMap::new()) }
    }

    fn series(&self, kind: Kind, name: &str, help: &str, labels: &[(&str, &str)]) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as {:?}, requested {kind:?}",
            family.kind
        );
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Series::Counter(Arc::default()),
                Kind::Gauge => Series::Gauge(Arc::default()),
                Kind::Histogram => Series::Histogram(Arc::default()),
            })
            .clone()
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is malformed or already registered with a
    /// different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(Kind::Counter, name, help, labels) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(Kind::Gauge, name, help, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The histogram `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.series(Kind::Histogram, name, help, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Visits every series, for the encoder: family name, help, kind,
    /// rendered label key, and a value snapshot.
    pub(crate) fn visit(&self, mut f: impl FnMut(&str, &str, Kind, &str, Snapshot)) {
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let snap = match series {
                    Series::Counter(c) => Snapshot::Counter(c.get()),
                    Series::Gauge(g) => Snapshot::Gauge(g.get()),
                    Series::Histogram(h) => {
                        Snapshot::Histogram { buckets: h.bucket_counts(), sum: h.sum() }
                    }
                };
                f(name, &family.help, family.kind, labels, snap);
            }
        }
    }
}

/// A point-in-time value of one series, as handed to the encoder.
#[derive(Debug)]
pub(crate) enum Snapshot {
    Counter(u64),
    Gauge(i64),
    Histogram { buckets: Vec<u64>, sum: u64 },
}

/// The process-wide registry (what [`counter`], [`gauge`],
/// [`histogram`], and the service's `/metrics` route use).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(name, help, labels)
}

/// [`Registry::gauge`] on the [`global`] registry.
pub fn gauge(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(name, help, labels)
}

/// [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(name, help, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_series_by_label() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits", &[("route", "/x")]);
        let b = r.counter("hits_total", "hits", &[("route", "/x")]);
        let other = r.counter("hits_total", "hits", &[("route", "/y")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name+labels is the same series");
        assert_eq!(other.get(), 0, "different labels are a different series");
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", "queue depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.add(10);
        assert_eq!(g.get(), 13);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative_at_the_edges() {
        // Bound cases: v <= 1 in bucket 0, exact powers stay in their
        // own bucket, one past a power spills to the next.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), FINITE_BUCKETS, "overflow goes to +Inf");
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 0u64.wrapping_add(1 + 2 + 3 + 4 + 1000).wrapping_add(u64::MAX));
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2, "0 and 1");
        assert_eq!(counts[1], 1, "2");
        assert_eq!(counts[2], 2, "3 and 4");
        assert_eq!(counts[10], 1, "1000 <= 1024");
        assert_eq!(counts[FINITE_BUCKETS], 1, "u64::MAX in +Inf");
    }

    #[test]
    fn histogram_bounds_double() {
        let bounds: Vec<u64> = Histogram::bounds().collect();
        assert_eq!(bounds.len(), FINITE_BUCKETS);
        assert_eq!(bounds[0], 1);
        assert_eq!(bounds[30], 1 << 30);
        for w in bounds.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn label_keys_escape_and_order_deterministically() {
        assert_eq!(label_key(&[]), "");
        assert_eq!(label_key(&[("a", "x"), ("b", "y")]), r#"{a="x",b="y"}"#);
        assert_eq!(label_key(&[("m", "say \"hi\"\\\n")]), "{m=\"say \\\"hi\\\"\\\\\\n\"}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("thing", "a thing", &[]);
        let _ = r.gauge("thing", "a thing", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let _ = Registry::new().counter("9lives", "", &[]);
    }

    #[test]
    fn updates_are_safe_across_threads() {
        let r = Registry::new();
        let c = r.counter("races_total", "", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8_000);
    }
}
