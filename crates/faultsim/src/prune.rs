//! Architectural-effect pruning: canonicalize candidate faults through
//! the shared decode path and collapse same-effect candidates into
//! classes, so only one trial per class is simulated while tallies keep
//! the full space's weights.

use std::collections::HashMap;

use gd_backend::FirmwareImage;
use gd_emu::{classify, Config, InjectKind, Slot};
use gd_glitch_emu::Outcome;
use gd_thumb::Instr;

use crate::model::{FaultInstance, FaultModel, SiteInfo};

/// The straight-line instruction walk over the named routines of an
/// image: one [`SiteInfo`] per instruction start, in address order.
///
/// Literal pools and alignment padding (`[code_end, end)` of each
/// [`FuncExtent`](gd_backend::FuncExtent)) and mid-instruction halfwords
/// are excluded: with fetch-stage injection, a fault only fires when the
/// PC reaches its site, and straight-line execution of the scoped
/// routines only fetches instruction starts. (Second-order campaigns
/// inherit this as a static-reachability approximation: a first fault
/// could in principle redirect the PC into a site the walk skipped.)
///
/// # Panics
///
/// Panics when a named routine does not exist in the image, or when the
/// walk runs into bytes that do not decode (lowered code never does).
pub fn sites(image: &FirmwareImage, cfg: Config, funcs: &[&str]) -> Vec<SiteInfo> {
    let base = image.text_base;
    let hw_at = |addr: u32| -> Option<u16> {
        let off = addr.checked_sub(base)? as usize;
        let bytes = image.text.get(off..off + 2)?;
        Some(u16::from_le_bytes([bytes[0], bytes[1]]))
    };
    let mut out = Vec::new();
    for name in funcs {
        let extent = image.extent(name).unwrap_or_else(|| panic!("unknown routine `{name}`"));
        let mut addr = extent.base;
        while addr < extent.code_end {
            let hw = hw_at(addr).expect("extent lies inside .text");
            let hw2 = hw_at(addr + 2);
            match classify(hw, hw2, cfg) {
                Slot::Instr { instr, size } => {
                    out.push(SiteInfo { addr, hw, hw2, instr, size });
                    addr += size;
                }
                other => panic!("non-instruction {other:?} at {addr:#010x} inside `{name}`"),
            }
        }
    }
    out
}

/// One equivalence class of same-effect faults at one site. All members
/// produce the same architectural effect; `members[0]` is the canonical
/// representative a campaign simulates, and the class outcome counts
/// `members.len()` times in the tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClass {
    /// The same-effect candidates, canonical representative first.
    pub members: Vec<FaultInstance>,
    /// `Some` when the class is statically classified (no simulation
    /// needed): the fault decodes identically to the original
    /// instruction, or a bus fault rides an instruction with no load —
    /// both are *No Effect* by construction.
    pub outcome: Option<Outcome>,
}

impl FaultClass {
    /// The canonical representative.
    pub fn rep(&self) -> FaultInstance {
        self.members[0]
    }

    /// Class size — the weight its outcome carries in tallies.
    pub fn weight(&self) -> u64 {
        self.members.len() as u64
    }
}

/// The pruned form of one model's fault space over a site list.
#[derive(Debug, Clone)]
pub struct ModelClasses {
    /// Index of the model in its registry.
    pub model: usize,
    /// Registry name of the model.
    pub name: &'static str,
    /// Equivalence classes in (site, first-candidate) order.
    pub classes: Vec<FaultClass>,
    /// Raw candidate count over *every* halfword of the scoped extents
    /// (pools, padding, and mid-instruction sites included) — the
    /// unpruned combinatorial space.
    pub enumerated: u64,
    /// Classes that require a simulated trial.
    pub simulated: u64,
}

impl ModelClasses {
    /// Candidates removed before simulation: `enumerated` minus the
    /// simulated representatives.
    pub fn pruned(&self) -> u64 {
        self.enumerated - self.simulated
    }
}

/// How a candidate fault canonicalizes at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CanonKey {
    /// Decodes to this instruction (possibly the original — handled as a
    /// static class before keying).
    Decode(Instr, u32),
    /// Any undefined pattern: the outcome taxonomy ignores the payload
    /// and execution stops at the fault, so all merge.
    Undefined,
    /// Undecidable from the image alone (a 32-bit prefix whose second
    /// halfword lies outside the text) — kept unmerged.
    Raw(u16),
    /// Statically *No Effect*: decodes identically to the original, or a
    /// load-bus fault on an instruction that performs no load.
    NoEffect,
    /// Unique effects that always simulate (skip, live bus faults).
    Unique(u32),
}

/// Whether `instr` performs at least one data load (the instructions a
/// load-bus fault can affect).
fn loads(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::LdrLit { .. }
            | Instr::LoadReg { .. }
            | Instr::LdrsbReg { .. }
            | Instr::LdrshReg { .. }
            | Instr::LoadImm { .. }
            | Instr::LdrSp { .. }
            | Instr::Ldm { .. }
            | Instr::Pop { .. }
            | Instr::LdrW { .. }
    )
}

fn canon_key(site: &SiteInfo, fault: &FaultInstance, cfg: Config, unique: &mut u32) -> CanonKey {
    match fault.kind {
        InjectKind::Corrupt { hw } => match classify(hw, site.hw2, cfg) {
            Slot::Instr { instr, size } if instr == site.instr && size == site.size => {
                CanonKey::NoEffect
            }
            Slot::Instr { instr, size } => CanonKey::Decode(instr, size),
            Slot::Undefined { .. } => CanonKey::Undefined,
            Slot::Incomplete { .. } | Slot::Live => CanonKey::Raw(hw),
        },
        InjectKind::Skip => {
            *unique += 1;
            CanonKey::Unique(*unique)
        }
        InjectKind::LoadBus(_) => {
            if loads(&site.instr) {
                *unique += 1;
                CanonKey::Unique(*unique)
            } else {
                CanonKey::NoEffect
            }
        }
    }
}

/// Prunes one model's candidate space over `scope_sites`.
///
/// Candidates at each site are grouped by their canonical architectural
/// effect under the shared [`classify`] decode path; one class per
/// effect survives. The `enumerated` total additionally counts the
/// sites the walk never visits — `halfword_slots` is the total halfword
/// count of the scoped extents (pools and padding included), so the
/// reported pruning ratio reflects the full combinatorial space.
pub fn prune_model(
    model_idx: usize,
    model: &dyn FaultModel,
    scope_sites: &[SiteInfo],
    halfword_slots: u64,
    cfg: Config,
) -> ModelClasses {
    let mut classes: Vec<FaultClass> = Vec::new();
    let mut unique = 0u32;
    for site in scope_sites {
        let mut by_key: HashMap<CanonKey, usize> = HashMap::new();
        for cand in model.candidates_at(site) {
            let key = canon_key(site, &cand, cfg, &mut unique);
            match by_key.get(&key) {
                Some(&idx) => classes[idx].members.push(cand),
                None => {
                    by_key.insert(key, classes.len());
                    let outcome = (key == CanonKey::NoEffect).then_some(Outcome::NoEffect);
                    classes.push(FaultClass { members: vec![cand], outcome });
                }
            }
        }
    }
    let enumerated = model.candidates_per_site() * halfword_slots;
    let simulated = classes.iter().filter(|c| c.outcome.is_none()).count() as u64;
    ModelClasses { model: model_idx, name: model.name(), classes, enumerated, simulated }
}

/// Total halfword slots of the named routines' extents, pools and
/// padding included — the per-site factor of the raw fault space.
pub fn halfword_slots(image: &FirmwareImage, funcs: &[&str]) -> u64 {
    funcs
        .iter()
        .map(|name| {
            let e = image.extent(name).unwrap_or_else(|| panic!("unknown routine `{name}`"));
            u64::from(e.end - e.base) / 2
        })
        .sum()
}
