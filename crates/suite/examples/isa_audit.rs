//! Audit an ISA's instruction encoding for glitch tolerance (paper §IV):
//! how often do random unidirectional bit flips turn each conditional
//! branch into an effective skip? And would redefining the all-zeros word
//! as an invalid instruction help?
//!
//! ```text
//! cargo run --release --example isa_audit
//! ```

use gd_emu::Config;
use gd_glitch_emu::{branch_case, sweep_case, Direction};
use gd_thumb::Cond;

fn main() {
    println!("ARM Thumb conditional branches under exhaustive 1→0 bit flips");
    println!("(every C(16,k) mask, k = 1..16, executed to classification)\n");
    println!(
        "{:<6} {:>12} {:>12} {:>14}",
        "branch", "AND skip%", "OR skip%", "AND skip% (0x0000 invalid)"
    );

    let mut worst: Option<(Cond, f64)> = None;
    for cond in Cond::ALL {
        let case = branch_case(cond);
        let and = sweep_case(&case, Direction::And, Config::default());
        let or = sweep_case(&case, Direction::Or, Config::default());
        let and0 = sweep_case(
            &case,
            Direction::And,
            Config { zero_is_invalid: true, ..Config::default() },
        );
        println!(
            "b{:<5} {:>11.2}% {:>11.2}% {:>14.2}%",
            cond,
            and.success_rate(),
            or.success_rate(),
            and0.success_rate()
        );
        if worst.is_none_or(|(_, rate)| and.success_rate() > rate) {
            worst = Some((cond, and.success_rate()));
        }
    }

    if let Some((cond, rate)) = worst {
        println!("\nmost skippable under 1→0 flips: b{cond} ({rate:.1}% of all masks)");
    }
    println!(
        "note how little the 0x0000-is-invalid hardening buys (Figure 2c):\n\
         the encoding space decays into *many* effective NOPs, not just one."
    );
}
