//! Image-level glitch-surface lints (`GL02xx`).
//!
//! These run over a lowered [`gd_backend::FirmwareImage`]: every
//! conditional branch in every routine's code extent gets its sixteen
//! unidirectional single-bit flips enumerated and classified per the
//! paper's §IV taxonomy ([`gd_glitch_emu::classify`]). Literal pools are
//! excluded via the extent table, so data never masquerades as code, and
//! findings are located as `function+0xoffset` through the image's symbol
//! map.

use std::collections::BTreeMap;

use gd_backend::FirmwareImage;
use gd_glitch_emu::classify::{branch_flips_with, FlipClass};
use gd_thumb::is_32bit_prefix;

use crate::engine::Finding;

/// Glitch-sensitivity totals for one routine (the `GL0202` report row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSensitivity {
    /// Conditional branches in the routine.
    pub branches: usize,
    /// Flips that yield the inverted branch.
    pub inverted: usize,
    /// Flips that yield an unconditional branch.
    pub unconditional: usize,
    /// Flips that decode to a non-branch (fall-through).
    pub fall_through: usize,
}

impl FnSensitivity {
    /// Total control-flow-diverting flips.
    pub fn diversions(&self) -> usize {
        self.inverted + self.unconditional + self.fall_through
    }
}

/// Runs the `GL02xx` lints, returning findings plus the per-routine
/// sensitivity table (sorted by routine name).
pub fn lint_image(image: &FirmwareImage) -> (Vec<Finding>, BTreeMap<String, FnSensitivity>) {
    let mut findings = Vec::new();
    let mut table: BTreeMap<String, FnSensitivity> = BTreeMap::new();
    for extent in &image.extents {
        let mut sens = FnSensitivity::default();
        let mut addr = extent.base;
        while addr + 2 <= extent.code_end {
            let off = (addr - image.text_base) as usize;
            let hw = u16::from_le_bytes([image.text[off], image.text[off + 1]]);
            if is_32bit_prefix(hw) {
                addr += 4; // skip both halves of a wide encoding (BL)
                continue;
            }
            // The halfword the pipeline would fetch after this one: flips
            // into the 32-bit prefix space consume it, so prefix flips
            // classify as what the resulting *wide* instruction does.
            // Only the very last halfword of the image has no successor.
            let hw2 = image.text.get(off + 2..off + 4).map(|b| u16::from_le_bytes([b[0], b[1]]));
            if let Some(profile) = branch_flips_with(hw, hw2) {
                let (i, u, f) = (
                    profile.count(FlipClass::InvertedBranch),
                    profile.count(FlipClass::UnconditionalBranch),
                    profile.count(FlipClass::FallThrough),
                );
                sens.branches += 1;
                sens.inverted += i;
                sens.unconditional += u;
                sens.fall_through += f;
                let off = addr - extent.base;
                findings.push(
                    Finding::new(
                        "GL0201",
                        &extent.name,
                        &format!("+{off:#x}"),
                        format!(
                            "b{} has {} diverting single-bit flips \
                             ({i} inverted, {u} unconditional, {f} fall-through)",
                            profile.cond,
                            profile.diversions(),
                        ),
                    )
                    .with_span(off, off + 2),
                );
            }
            addr += 2;
        }
        if sens.branches > 0 {
            findings.push(Finding::new(
                "GL0202",
                &extent.name,
                "",
                format!(
                    "{} conditional branches expose {} diverting flips \
                     ({} inverted, {} unconditional, {} fall-through)",
                    sens.branches,
                    sens.diversions(),
                    sens.inverted,
                    sens.unconditional,
                    sens.fall_through,
                ),
            ));
            table.insert(extent.name.clone(), sens);
        }
    }
    (findings, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_backend::compile;
    use gd_ir::parse_module;

    const SRC: &str = "
fn @decide(%a: i32) -> i32 {
entry:
  %c = icmp eq i32 %a, 7
  br %c, yes, no
yes:
  ret i32 1
no:
  ret i32 0
}
fn @main() -> i32 {
entry:
  %r = call i32 @decide(7)
  ret i32 %r
}
";

    #[test]
    fn every_conditional_branch_is_profiled_and_located() {
        let m = parse_module(SRC).unwrap();
        let image = compile(&m, "main").unwrap();
        let (findings, table) = lint_image(&image);
        let decide = table.get("decide").expect("decide has a conditional branch");
        assert!(decide.branches >= 1);
        assert!(decide.inverted >= decide.branches, "each branch has its inverse flip");
        assert!(
            table.get("main").is_none() || table["main"].branches > 0,
            "straight-line main has no row unless lowering branched"
        );
        // Locations resolve back through the symbol table.
        for f in findings.iter().filter(|f| f.lint == "GL0201") {
            let off =
                u32::from_str_radix(f.location.trim_start_matches("+0x"), 16).expect("+0x offset");
            let addr = image.symbol(&f.function) + off;
            assert_eq!(
                image.symbolize(addr).map(|(n, o)| (n.to_owned(), o)),
                Some((f.function.clone(), off))
            );
        }
        // Exactly one GL0202 row per table entry.
        let rows = findings.iter().filter(|f| f.lint == "GL0202").count();
        assert_eq!(rows, table.len());
    }

    #[test]
    fn literal_pools_are_not_scanned() {
        // 0xD3B9AEC6 contains 0xAEC6; scanned bytes could alias a branch
        // encoding (0xD3B9 *is* a bcc). Pools sit past code_end, so no
        // finding may point into one.
        let src = "
fn @main() -> i32 {
entry:
  %x = add i32 0xD3B9AEC6, 1
  ret i32 %x
}
";
        let m = parse_module(src).unwrap();
        let image = compile(&m, "main").unwrap();
        let (findings, _) = lint_image(&image);
        let main = image.extent("main").unwrap();
        assert!(main.code_end < main.end, "literal pool exists");
        for f in findings.iter().filter(|f| f.lint == "GL0201" && f.function == "main") {
            let off = u32::from_str_radix(f.location.trim_start_matches("+0x"), 16).unwrap();
            assert!(main.base + off < main.code_end, "{f:?} points into the pool");
        }
    }
}
