//! The campaign service: a small HTTP/1.1 front-end over [`Engine`]
//! with a bounded job queue and graceful shutdown.
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /campaigns` | body = spec JSON; enqueue; `202 {"id": n}` or `429` when the queue is full |
//! | `GET /campaigns/{id}` | job status: `queued` / `running` (+ shard progress) / `done` / `failed` |
//! | `GET /campaigns/{id}/results` | the finished result as JSON, or with `?format=text` the exact legacy report bytes |
//! | `POST /shutdown` | stop accepting, finish the running campaign, drop queued jobs |
//!
//! One accept thread handles requests serially (every request is a
//! cheap in-memory operation) and one worker thread runs campaigns one
//! at a time — campaign *internals* already saturate the machine via
//! [`gd_exec`], so service-level concurrency would only thrash.

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::{CampaignResult, Engine};
use crate::http::{read_request, write_response, Request};
use crate::json::Json;
use crate::shards::shard_plan;
use crate::spec::CampaignSpec;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Engine store directory (`None` = no cache, no checkpoints).
    pub store: Option<PathBuf>,
    /// Maximum *queued* campaigns (the running one not counted); further
    /// submissions get `429 Too Many Requests`.
    pub queue_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:0".into(), store: None, queue_limit: 16 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
}

#[derive(Debug)]
struct JobRecord {
    spec: CampaignSpec,
    state: JobState,
    done: u32,
    total: u32,
    result: Option<CampaignResult>,
}

#[derive(Debug, Default)]
struct ServiceState {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobRecord>,
}

#[derive(Debug)]
struct Inner {
    engine: Engine,
    queue_limit: usize,
    shutdown: AtomicBool,
    state: Mutex<ServiceState>,
    wake: Condvar,
}

/// A running campaign service. Dropping the handle leaks the threads;
/// call [`Server::shutdown`] for an orderly stop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and worker threads, and returns.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let engine = match &config.store {
            Some(dir) => Engine::with_store(dir),
            None => Engine::ephemeral(),
        };
        let inner = Arc::new(Inner {
            engine,
            queue_limit: config.queue_limit,
            shutdown: AtomicBool::new(false),
            state: Mutex::new(ServiceState::default()),
            wake: Condvar::new(),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        };
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        Ok(Server { addr, accept: Some(accept), worker: Some(worker) })
    }

    /// The actually bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets the in-flight campaign
    /// finish (its checkpoints and cache entry are written), drops
    /// queued jobs, and joins both threads.
    ///
    /// # Errors
    ///
    /// Fails when the shutdown request cannot be delivered or a thread
    /// panicked.
    pub fn shutdown(self) -> Result<(), String> {
        crate::http::request(&self.addr.to_string(), "POST", "/shutdown", None)?;
        self.join()
    }

    /// Blocks until the service stops (an HTTP `POST /shutdown` arrives)
    /// and joins both threads.
    ///
    /// # Errors
    ///
    /// Fails when a service thread panicked.
    pub fn join(mut self) -> Result<(), String> {
        for handle in [self.accept.take(), self.worker.take()].into_iter().flatten() {
            handle.join().map_err(|_| "service thread panicked")?;
        }
        Ok(())
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, spec) = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let job = state.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    break (id, job.spec.clone());
                }
                let (next, _) = inner.wake.wait_timeout(state, Duration::from_millis(200)).unwrap();
                state = next;
            }
        };
        let progress = |done: u32, total: u32| {
            let mut state = inner.state.lock().unwrap();
            if let Some(job) = state.jobs.get_mut(&id) {
                job.done = done;
                job.total = total;
            }
        };
        let outcome = inner.engine.run_with(&spec, &progress);
        let mut state = inner.state.lock().unwrap();
        if let Some(job) = state.jobs.get_mut(&id) {
            match outcome {
                Ok(result) => {
                    job.state = JobState::Done;
                    job.result = Some(result);
                }
                Err(e) => job.state = JobState::Failed(e),
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else { continue };
        // A stalled client must not wedge the single accept thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        match read_request(&mut stream) {
            Ok(request) => {
                let (status, content_type, body) = route(inner, &request);
                let _ = write_response(&mut stream, status, &content_type, &body);
            }
            Err(e) => {
                let body = error_json(&e);
                let _ = write_response(&mut stream, 400, "application/json", &body);
            }
        }
    }
}

fn error_json(message: &str) -> Vec<u8> {
    Json::obj(vec![("error", Json::Str(message.into()))])
        .to_string_compact()
        .expect("error body serializes")
        .into_bytes()
}

fn json_body(v: &Json) -> Vec<u8> {
    v.to_string_compact().expect("response body serializes").into_bytes()
}

type Response = (u16, String, Vec<u8>);

fn route(inner: &Inner, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["campaigns"]) => submit(inner, &request.body),
        ("GET", ["campaigns", id]) => with_job(inner, id, status_response),
        ("GET", ["campaigns", id, "results"]) => {
            let as_text = request.query.split('&').any(|kv| kv == "format=text");
            with_job(inner, id, |job| results_response(job, as_text))
        }
        ("POST", ["shutdown"]) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            inner.wake.notify_all();
            ok_json(&Json::obj(vec![("ok", Json::Bool(true))]))
        }
        (_, ["campaigns", ..]) | (_, ["shutdown"]) => {
            (405, "application/json".into(), error_json("method not allowed"))
        }
        _ => (404, "application/json".into(), error_json("no such route")),
    }
}

fn ok_json(v: &Json) -> Response {
    (200, "application/json".into(), json_body(v))
}

fn submit(inner: &Inner, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, "application/json".into(), error_json("body is not UTF-8")),
    };
    let spec = match CampaignSpec::from_json_text(text) {
        Ok(s) => s,
        Err(e) => return (400, "application/json".into(), error_json(&e)),
    };
    // Size the progress denominator up front so `queued` status already
    // reports the shard total.
    let full = shard_plan(&spec).len() as u32;
    let total = match spec.shards {
        Some((lo, hi)) if hi <= full => hi - lo,
        Some((_, hi)) => {
            let e = format!("shard range end {hi} exceeds the plan's {full} shards");
            return (400, "application/json".into(), error_json(&e));
        }
        None => full,
    };
    let mut state = inner.state.lock().unwrap();
    if state.queue.len() >= inner.queue_limit {
        return (429, "application/json".into(), error_json("queue full, retry later"));
    }
    let id = state.next_id;
    state.next_id += 1;
    state
        .jobs
        .insert(id, JobRecord { spec, state: JobState::Queued, done: 0, total, result: None });
    state.queue.push_back(id);
    inner.wake.notify_all();
    (
        202,
        "application/json".into(),
        json_body(&Json::obj(vec![
            ("id", Json::Int(id.into())),
            ("url", Json::Str(format!("/campaigns/{id}"))),
        ])),
    )
}

fn with_job(inner: &Inner, id: &str, f: impl Fn(&JobRecord) -> Response) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return (404, "application/json".into(), error_json("campaign ids are integers"));
    };
    let state = inner.state.lock().unwrap();
    match state.jobs.get(&id) {
        Some(job) => f(job),
        None => (404, "application/json".into(), error_json("no such campaign")),
    }
}

fn status_response(job: &JobRecord) -> Response {
    let (label, error) = match &job.state {
        JobState::Queued => ("queued", None),
        JobState::Running => ("running", None),
        JobState::Done => ("done", None),
        JobState::Failed(e) => ("failed", Some(e.clone())),
    };
    let mut fields = vec![
        ("state", Json::Str(label.into())),
        ("done", Json::Int(job.done.into())),
        ("total", Json::Int(job.total.into())),
        ("workload", Json::Str(job.spec.workload.kind().into())),
    ];
    if let Some(e) = error {
        fields.push(("error", Json::Str(e)));
    }
    ok_json(&Json::obj(fields))
}

fn results_response(job: &JobRecord, as_text: bool) -> Response {
    match (&job.state, &job.result) {
        (JobState::Done, Some(result)) => {
            if as_text {
                (200, "text/plain; charset=utf-8".into(), result.text.clone().into_bytes())
            } else {
                ok_json(&result.to_json())
            }
        }
        (JobState::Failed(e), _) => {
            (404, "application/json".into(), error_json(&format!("campaign failed: {e}")))
        }
        _ => (404, "application/json".into(), error_json("campaign not finished")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::request;

    /// Control-plane behavior that needs no campaign work: routing,
    /// validation, and shutdown. (Full campaigns over HTTP live in the
    /// `e2e_http` integration test.)
    #[test]
    fn control_plane_routes_validate_and_shut_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let (status, body) = request(&addr, "GET", "/campaigns/0", None).unwrap();
        assert_eq!(status, 404, "{body}");
        let (status, _) = request(&addr, "GET", "/campaigns/not-a-number", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = request(&addr, "DELETE", "/campaigns/1", None).unwrap();
        assert_eq!(status, 405);

        let (status, body) = request(&addr, "POST", "/campaigns", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        let bad_spec = r#"{"version":1,"workload":{"kind":"table9"}}"#;
        let (status, body) = request(&addr, "POST", "/campaigns", Some(bad_spec)).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("table9"), "{body}");
        let bad_range =
            r#"{"version":1,"workload":{"kind":"table1"},"shards":[0,999]}"#.to_string();
        let (status, body) = request(&addr, "POST", "/campaigns", Some(&bad_range)).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("exceeds"), "{body}");

        server.shutdown().unwrap();
    }
}
