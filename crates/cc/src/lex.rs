//! Lexer for the C subset.

use core::fmt;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or hex).
    Int(i64),
    /// Punctuation or operator, canonical spelling.
    Punct(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
        }
    }
}

/// Lexing/parsing error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcError {
    /// 1-based line (0 at end of input).
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CcError {}

/// Multi-character operators, longest first.
const PUNCTS: [&str; 30] = [
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "(", ")", "{", "}", ";", ",", "=", "<", ">", "*",
];
const SINGLE: &str = "+-*/%&|^~!()[]{};,=<>";

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`CcError`] for malformed numbers or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CcError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if src[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if src[i..].starts_with("/*") {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(CcError {
                        line: start_line,
                        msg: "unterminated block comment".into(),
                    });
                }
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if &src[i..i + 2] == "*/" {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            if src[i..].starts_with("0x") || src[i..].starts_with("0X") {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&src[start + 2..i], 16).map_err(|_| CcError {
                    line,
                    msg: format!("bad hex literal `{}`", &src[start..i]),
                })?;
                out.push(Token { kind: Tok::Int(v), line });
            } else {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Swallow C suffixes (u, U, l, L).
                while i < bytes.len() && matches!(bytes[i], b'u' | b'U' | b'l' | b'L') {
                    i += 1;
                }
                let digits: String =
                    src[start..i].chars().take_while(|c| c.is_ascii_digit()).collect();
                let v = digits
                    .parse()
                    .map_err(|_| CcError { line, msg: format!("bad literal `{digits}`") })?;
                out.push(Token { kind: Tok::Int(v), line });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token { kind: Tok::Ident(src[start..i].to_owned()), line });
            continue;
        }
        // Operators.
        if let Some(p) = PUNCTS.iter().find(|p| src[i..].starts_with(**p)) {
            out.push(Token { kind: Tok::Punct(p), line });
            i += p.len();
            continue;
        }
        if SINGLE.contains(c) {
            // Canonicalize to a 'static str.
            let p = match c {
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '~' => "~",
                '!' => "!",
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                '{' => "{",
                '}' => "}",
                ';' => ";",
                ',' => ",",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                _ => unreachable!(),
            };
            out.push(Token { kind: Tok::Punct(p), line });
            i += 1;
            continue;
        }
        return Err(CcError { line, msg: format!("unexpected character `{c}`") });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            kinds("int x = 0x2A;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn multichar_operators_win() {
        assert_eq!(kinds("a<<=1"), vec![Tok::Ident("a".into()), Tok::Punct("<<="), Tok::Int(1),]);
        assert_eq!(
            kinds("a<b"),
            vec![Tok::Ident("a".into()), Tok::Punct("<"), Tok::Ident("b".into()),]
        );
        assert_eq!(
            kinds("a!=b"),
            vec![Tok::Ident("a".into()), Tok::Punct("!="), Tok::Ident("b".into()),]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn suffixes_swallowed() {
        assert_eq!(kinds("10UL"), vec![Tok::Int(10)]);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* never ends").is_err());
        assert!(lex("0xZZ").is_err());
    }
}
