//! # gd-ir — a small typed SSA IR (the LLVM-subset substrate)
//!
//! GlitchResistor's defenses are compiler passes. This crate provides the
//! compiler infrastructure they run on: a typed SSA IR with exactly the
//! constructs the paper's passes reason about — conditional branches,
//! (volatile) loads and stores, calls, phis, enum-provenance constants —
//! plus the supporting analyses (CFG, dominators, natural loops), a
//! verifier, a reference interpreter, and a round-tripping text format.
//!
//! ```
//! use gd_ir::parse_module;
//!
//! let m = parse_module(
//!     "fn @double(%x: i32) -> i32 {\n\
//!      entry:\n  %1 = add i32 %x, %x\n  ret i32 %1\n}\n",
//! )?;
//! assert_eq!(m.funcs.len(), 1);
//! # Ok::<(), gd_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod analysis;
mod builder;
mod core;
mod interp;
mod parse;
mod print;
mod verify;

pub use analysis::{natural_loops, Cfg, DomTree, NaturalLoop};
pub use builder::Builder;
pub use core::{
    BinOp, Block, BlockId, BranchCheck, EnumDef, EnumRef, ExternDecl, Function, Global, GuardInfo,
    Instr, Module, Pred, Terminator, Ty, ValueDef, ValueId,
};
pub use interp::{ExternHandler, InterpError, Interpreter, RtVal};
pub use parse::{parse_module, ParseError};
pub use print::{print_function, print_module};
pub use verify::{verify_function, verify_module, VerifyError};
