//! Firmware inspector: compile an evaluation firmware with a chosen defense
//! configuration and dump its annotated disassembly, symbols, and section
//! sizes. `--check` diffs the default `guard all` dump against
//! `results/gdump_guard_all.txt`.
//!
//! ```text
//! cargo run -p gd-bench --release --bin gdump -- boot all
//! cargo run -p gd-bench --release --bin gdump -- guard none
//! ```

use std::process::ExitCode;

use gd_backend::compile;
use glitch_resistor::{harden, Config, Defenses};

fn regenerate() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("guard");
    let cfg = args.get(1).map(String::as_str).unwrap_or("all");

    let mut module = match which {
        "boot" => gd_firmware::boot(),
        "enum" => gd_firmware::if_a_eq_success(),
        _ => gd_firmware::while_not_a(),
    };
    let defenses = match cfg {
        "none" => Defenses::NONE,
        "nodelay" => Defenses::ALL_EXCEPT_DELAY,
        "branches" => Defenses::BRANCHES,
        _ => Defenses::ALL,
    };
    harden(&mut module, &Config::new(defenses));
    let image = compile(&module, "main").expect("firmware lowers");

    println!("; firmware `{which}` with defenses `{cfg}`");
    println!(
        "; text {} B, data {} B, bss {} B, shadow {} B, nvm {} B\n",
        image.sizes.text, image.sizes.data, image.sizes.bss, image.sizes.shadow, image.sizes.nvm
    );
    // Function symbols sorted by address for annotation.
    let mut funcs: Vec<(&String, &u32)> = image
        .symbols
        .iter()
        .filter(|(_, addr)| **addr >= 0x0800_0000 && **addr < 0x0800_F000)
        .collect();
    funcs.sort_by_key(|(_, addr)| **addr);
    let mut idx = 0usize;
    for (off, text) in gd_thumb::fmt::disassemble(&image.text) {
        let addr = 0x0800_0000 + off;
        while idx < funcs.len() && *funcs[idx].1 == addr {
            println!("\n{}:", funcs[idx].0);
            idx += 1;
        }
        println!("  {addr:08x}:  {text}");
    }
    println!("\n; globals");
    for (name, addr) in &image.symbols {
        if *addr >= 0x2000_0000 || (0x0800_F000..0x0801_0000).contains(addr) {
            println!(";   {addr:08x}  {name}");
        }
    }
}

fn main() -> ExitCode {
    gd_bench::selfcheck::main("gdump_guard_all.txt", &["guard", "all"], regenerate)
}
