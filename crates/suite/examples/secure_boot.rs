//! Secure boot under glitching: the paper's motivating scenario.
//!
//! A bootloader checksums the application image and refuses to jump into it
//! unless the checksum matches — exactly the control-flow pattern glitching
//! attacks target (XBOX 360, PS Vita, Nintendo Switch, …). This example
//! compares the unprotected bootloader against the GlitchResistor-hardened
//! build under identical glitch campaigns.
//!
//! ```text
//! cargo run --release --example secure_boot
//! ```

use gd_backend::compile;
use gd_chipwhisperer::{
    full_grid, run_attack, AttackOutcome, AttackSpec, Device, FaultModel, GlitchParams,
    SuccessCheck,
};
use gd_ir::parse_module;
use glitch_resistor::{harden, Config, Defenses};

const BOOTLOADER: &str = "
module secure_boot

enum VerifyResult { BAD, GOOD }
global @image_word0 : i32 = 0x1BADB002
global @image_word1 : i32 = 0x0BADF00D
global @expected : i32 = 0x10101011

fn @checksum() -> i32 {
entry:
  %p0 = globaladdr @image_word0
  %w0 = load i32, %p0
  %p1 = globaladdr @image_word1
  %w1 = load i32, %p1
  %x = xor i32 %w0, %w1
  %r = lshr i32 %x, 4
  ret i32 %r
}

fn @verify() -> i32 {
entry:
  %sum = call i32 @checksum()
  %p = globaladdr @expected
  %want = load i32, %p
  %ok = icmp eq i32 %sum, %want
  br %ok, good, bad
good:
  ret i32 1
bad:
  ret i32 0
}

fn @main() -> i32 {
entry:
  %t = inttoptr i32 0x48000014
  store volatile i32 1, %t          ; observable activity = glitch trigger
  %r = call i32 @verify()
  %ok = icmp eq i32 %r, 1
  br %ok, boot_app, halt
boot_app:
  ret i32 0xACCE55                  ; jump into the (unsigned!) image
halt:
  br spin
spin:
  br spin                           ; refuse to boot
}
";

/// The image is corrupt (checksum ≠ expected): booting it means the
/// attacker won.
fn campaign(device: &Device, model: &FaultModel, label: &str) {
    let spec = AttackSpec { success: SuccessCheck::HaltWithR0(0xACCE55), max_cycles: 200_000 };
    let mut total = 0u64;
    let mut successes = 0u64;
    let mut detected = 0u64;
    let mut boot = 0u64;
    // A reduced Table VI-style sweep: single glitches over the verify window.
    for cycle in 0..30u32 {
        for &(w, o) in full_grid().iter().step_by(7) {
            boot += 1;
            total += 1;
            if model.severity(w, o) == 0.0 {
                continue;
            }
            let attempt =
                run_attack(device, model, GlitchParams::single(cycle, w, o), boot, &spec, None);
            match attempt.outcome {
                AttackOutcome::Success => successes += 1,
                AttackOutcome::Detected => detected += 1,
                _ => {}
            }
        }
    }
    println!(
        "{label:<22} attempts {total:>6}   boots-of-bad-image {successes:>4} ({:.4}%)   detected {detected:>5}",
        100.0 * successes as f64 / total as f64
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = FaultModel::default();

    // Unprotected bootloader.
    let plain = parse_module(BOOTLOADER)?;
    let plain_dev = Device::from_image(&compile(&plain, "main")?);

    // Hardened bootloader: branch duplication, loop hardening, integrity,
    // RS return codes and enums — everything except the delay (so the two
    // campaigns stay cycle-aligned and comparable), then everything.
    let mut no_delay = parse_module(BOOTLOADER)?;
    harden(&mut no_delay, &Config::new(Defenses::ALL_EXCEPT_DELAY));
    let nodelay_dev = Device::from_image(&compile(&no_delay, "main")?);

    let mut all = parse_module(BOOTLOADER)?;
    harden(&mut all, &Config::new(Defenses::ALL));
    let all_dev = Device::from_image(&compile(&all, "main")?);

    println!("glitching a secure-boot signature check (corrupt image loaded):\n");
    campaign(&plain_dev, &model, "unprotected");
    campaign(&nodelay_dev, &model, "GlitchResistor\\Delay");
    campaign(&all_dev, &model, "GlitchResistor All");
    println!("\nthe hardened builds turn almost every would-be boot into a detection.");
    Ok(())
}
