//! Control-flow analyses: predecessors, reverse postorder, dominator tree
//! (Cooper–Harvey–Kennedy), and natural-loop detection.

use std::collections::BTreeSet;

use crate::core::{BlockId, Function};

/// The control-flow graph of one function, with derived orderings.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Cfg {
        let n = func.block_count();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for bb in func.block_ids() {
            if let Some(term) = &func.block(bb).term {
                for succ in term.successors() {
                    succs[bb.index()].push(succ);
                    preds[succ.index()].push(bb);
                }
            }
        }
        // Postorder DFS from the entry.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        if n > 0 {
            let mut stack = vec![(func.entry(), 0usize)];
            visited[func.entry().index()] = true;
            while let Some((bb, child)) = stack.pop() {
                let children = &succs[bb.index()];
                if child < children.len() {
                    stack.push((bb, child + 1));
                    let next = children[child];
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push((next, 0));
                    }
                } else {
                    postorder.push(bb);
                }
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, bb) in rpo.iter().enumerate() {
            rpo_index[bb.index()] = Some(i as u32);
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Predecessors of a block.
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.index()]
    }

    /// Successors of a block.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.index()]
    }

    /// Whether the block is reachable from the entry.
    pub fn reachable(&self, bb: BlockId) -> bool {
        self.rpo_index[bb.index()].is_some()
    }
}

/// An immediate-dominator tree.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative
    /// algorithm over the reverse postorder.
    pub fn compute(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.block_count();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 || cfg.rpo.is_empty() {
            return DomTree { idom };
        }
        let entry = cfg.rpo[0];
        idom[entry.index()] = Some(entry);
        let index_of = |bb: BlockId| cfg.rpo_index[bb.index()];

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &pred in cfg.preds(bb) {
                    if idom[pred.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(current) => intersect(&idom, &index_of, pred, current),
                    });
                }
                if let Some(nd) = new_idom {
                    if idom[bb.index()] != Some(nd) {
                        idom[bb.index()] = Some(nd);
                        changed = true;
                    }
                }
            }
        }
        // The entry's idom is conventionally itself; normalize to None for
        // a cleaner API.
        idom[entry.index()] = None;
        DomTree { idom }
    }

    /// Immediate dominator (`None` for the entry and unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom[bb.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    index_of: &impl Fn(BlockId) -> Option<u32>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    // Walk both up the tree until they meet; comparison is by RPO index
    // (smaller index = closer to the entry).
    loop {
        let (ia, ib) = match (index_of(a), index_of(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return a, // unreachable operands cannot occur for CHK inputs
        };
        if ia == ib {
            return a;
        }
        if ia > ib {
            a = idom[a.index()].expect("non-entry block has idom during intersect");
        } else {
            b = idom[b.index()].expect("non-entry block has idom during intersect");
        }
    }
}

/// A natural loop: a back edge `latch → header` where the header dominates
/// the latch, plus the set of blocks in the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The source of the back edge.
    pub latch: BlockId,
    /// Every block in the loop (including header and latch).
    pub body: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `bb` belongs to this loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.body.contains(&bb)
    }
}

/// Finds all natural loops of `func`. Loops sharing a header appear as
/// separate entries (one per back edge).
pub fn natural_loops(func: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for bb in func.block_ids() {
        if !cfg.reachable(bb) {
            continue;
        }
        for &succ in cfg.succs(bb) {
            if dom.dominates(succ, bb) {
                // Back edge bb → succ; flood fill backwards from the latch.
                let header = succ;
                let latch = bb;
                let mut body: BTreeSet<BlockId> = [header, latch].into_iter().collect();
                let mut stack = vec![latch];
                while let Some(cur) = stack.pop() {
                    if cur == header {
                        continue;
                    }
                    for &p in cfg.preds(cur) {
                        if body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop { header, latch, body });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::core::{Pred, Ty};

    /// entry → header; header → (body | exit); body → header.
    fn loop_func() -> Function {
        let mut f = Function::new("spin", vec![Ty::Ptr], Ty::Void);
        let entry = f.add_block("entry");
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        b.br(header);
        b.switch_to(header);
        let v = b.load_volatile(p, Ty::I32);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Ne, v, zero);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        f
    }

    #[test]
    fn cfg_edges() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        let header = f.block_by_name("header").unwrap();
        let body = f.block_by_name("body").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let exit = f.block_by_name("exit").unwrap();
        assert_eq!(cfg.succs(header), &[body, exit]);
        let mut preds = cfg.preds(header).to_vec();
        preds.sort();
        assert_eq!(preds, vec![entry, body]);
        assert_eq!(cfg.rpo[0], entry);
        assert!(cfg.reachable(exit));
    }

    #[test]
    fn dominators_of_diamond() {
        // entry → (a | b) → join.
        let mut f = Function::new("d", vec![Ty::I32], Ty::Void);
        let entry = f.add_block("entry");
        let a = f.add_block("a");
        let b_bb = f.add_block("b");
        let join = f.add_block("join");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Eq, p, zero);
        b.cond_br(c, a, b_bb);
        b.switch_to(a);
        b.br(join);
        b.switch_to(b_bb);
        b.br(join);
        b.switch_to(join);
        b.ret(None);

        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(b_bb), Some(entry));
        assert_eq!(dom.idom(join), Some(entry), "join's idom skips the arms");
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(a, join));
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn natural_loop_detection() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let loops = natural_loops(&f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, f.block_by_name("header").unwrap());
        assert_eq!(l.latch, f.block_by_name("body").unwrap());
        assert_eq!(l.body.len(), 2);
        assert!(!l.contains(f.block_by_name("exit").unwrap()));
    }

    #[test]
    fn self_loop() {
        let mut f = Function::new("s", vec![Ty::Ptr], Ty::Void);
        let entry = f.add_block("entry");
        let spin = f.add_block("spin");
        let exit = f.add_block("exit");
        let p = f.param(0);
        let mut b = Builder::new(&mut f, entry);
        b.br(spin);
        b.switch_to(spin);
        let v = b.load_volatile(p, Ty::I32);
        let zero = b.const_i32(0);
        let c = b.icmp(Pred::Eq, v, zero);
        b.cond_br(c, spin, exit);
        b.switch_to(exit);
        b.ret(None);

        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let loops = natural_loops(&f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, spin);
        assert_eq!(loops[0].latch, spin);
        assert_eq!(loops[0].body.len(), 1);
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut f = Function::new("u", vec![], Ty::Void);
        let entry = f.add_block("entry");
        let orphan = f.add_block("orphan");
        let mut b = Builder::new(&mut f, entry);
        b.ret(None);
        b.switch_to(orphan);
        b.ret(None);
        let cfg = Cfg::compute(&f);
        assert!(cfg.reachable(entry));
        assert!(!cfg.reachable(orphan));
        let dom = DomTree::compute(&f, &cfg);
        assert_eq!(dom.idom(orphan), None);
        assert!(!dom.dominates(entry, orphan));
    }
}
