//! Cycle cost model for a Cortex-M0-style 3-stage core at 48 MHz.

use gd_thumb::Instr;

/// Per-class cycle costs. Defaults follow the Cortex-M0 technical reference
/// (single-cycle ALU and multiplier, 2-cycle loads/stores, 3-cycle taken
/// branches) plus a large constant for non-volatile-memory programming —
/// the flash write behind the delay defense's Table IV constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Single-transfer load cost.
    pub load: u32,
    /// Single-transfer store cost.
    pub store: u32,
    /// Additional cycles when a branch redirects the pipeline.
    pub taken_branch_penalty: u32,
    /// `BL` cost.
    pub bl: u32,
    /// `BX`/`BLX` cost.
    pub bx: u32,
    /// Multiply cost (M0 ships the single-cycle multiplier option).
    pub mul: u32,
    /// Cycles charged for a store into the NVM (flash) region — erase +
    /// program time at 48 MHz dominates the delay defense's boot constant.
    pub nvm_write: u32,
}

impl Default for Timing {
    fn default() -> Timing {
        Timing {
            load: 2,
            store: 2,
            taken_branch_penalty: 2,
            bl: 4,
            bx: 3,
            mul: 1,
            nvm_write: 177_000,
        }
    }
}

impl Timing {
    /// The base cost of `instr` assuming branches fall through; the
    /// pipeline adds [`Timing::taken_branch_penalty`] when a redirect
    /// actually happens, and swaps NVM store costs by address.
    pub fn base_cycles(&self, instr: Instr) -> u32 {
        use gd_thumb::Instr as I;
        match instr {
            I::LdrLit { .. }
            | I::LoadReg { .. }
            | I::LdrsbReg { .. }
            | I::LdrshReg { .. }
            | I::LoadImm { .. }
            | I::LdrSp { .. } => self.load,
            I::StoreReg { .. } | I::StoreImm { .. } | I::StrSp { .. } => self.store,
            I::Push { rlist, lr } => 1 + rlist.count_ones() + u32::from(lr),
            I::Pop { rlist, pc } => {
                1 + rlist.count_ones() + if pc { 1 + self.taken_branch_penalty + 1 } else { 0 }
            }
            I::Stm { rlist, .. } | I::Ldm { rlist, .. } => 1 + rlist.count_ones(),
            I::Alu { op: gd_thumb::AluOp::Mul, .. } => self.mul,
            I::Bl { .. } => self.bl,
            I::Bx { .. } | I::Blx { .. } => self.bx,
            I::B { .. } => 1, // penalty added on redirect
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gd_thumb::{Cond, Reg, Width};

    #[test]
    fn reference_costs() {
        let t = Timing::default();
        assert_eq!(t.base_cycles(Instr::MovImm { rd: Reg::R0, imm8: 1 }), 1);
        assert_eq!(
            t.base_cycles(Instr::LoadImm { width: Width::Byte, rt: Reg::R3, rn: Reg::R3, imm5: 0 }),
            2
        );
        assert_eq!(t.base_cycles(Instr::CmpImm { rn: Reg::R3, imm8: 0 }), 1);
        // The paper's loop: mov(1) + adds(1) + ldrb(2) + cmp(1) + taken
        // beq(1+2) = 8 cycles.
        let beq = Instr::BCond { cond: Cond::Eq, offset: -8 };
        assert_eq!(t.base_cycles(beq) + t.taken_branch_penalty, 3);
        assert_eq!(t.base_cycles(Instr::Push { rlist: 0b1111, lr: true }), 6);
        assert_eq!(t.base_cycles(Instr::Bl { offset: 0 }), 4);
    }
}
