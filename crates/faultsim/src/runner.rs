//! The multi-fault trial loop: one booted emulator, one snapshot taken
//! at the first scoped fetch, predecoded dispatch everywhere else — the
//! `PerturbRunner` pattern generalized to N fetch-stage injections per
//! trial.

use gd_backend::FirmwareImage;
use gd_emu::{Config, Emu, PredecodedImage, Snapshot, StepOutcome, StopReason};
use gd_firmware::BOOT_MARKER;
use gd_glitch_emu::Outcome;
use gd_thumb::Reg;

use crate::model::FaultInstance;

/// Step budget per trial, from reset. `firmware::boot` completes in
/// a few hundred steps; the headroom bounds glitched runs that land in
/// the HAL's wait loops without slowing honest trials.
pub const MF_TRIAL_STEPS: u64 = 4096;

/// The value `firmware::boot`'s impossible path reports — seeing it on
/// the uart means the glitch reached code that no unfaulted execution
/// reaches.
pub const COMPROMISE_VALUE: u32 = 0xC0DE;

/// Replays `firmware::boot` under sets of armed fault injections and
/// classifies each trial.
///
/// Construction boots the image once and advances to the first fetch
/// inside any scoped range — execution before that point cannot observe
/// a fault at a scoped site, so it is identical for every trial and
/// paid once. Each trial restores the snapshot (dropping the previous
/// trial's injections), arms the set, invalidates the injected sites in
/// a working copy of the micro-op table (injections apply on the live
/// fallback path only), runs with a compromise watch on the uart
/// store, and heals the table from a pristine copy.
#[derive(Debug)]
pub struct MultiFaultRunner {
    emu: Emu,
    snap: Snapshot,
    image: PredecodedImage,
    pristine: PredecodedImage,
    budget: u64,
    uart: u32,
}

impl MultiFaultRunner {
    /// Boots `image` and snapshots at the first fetch within `scope`
    /// (half-open address ranges). Falls back to the reset state if no
    /// scoped fetch happens within the budget.
    pub fn new(image: &FirmwareImage, cfg: Config, scope: &[(u32, u32)]) -> MultiFaultRunner {
        let mut emu = image.boot_emu();
        emu.cfg = cfg;
        let pristine = PredecodedImage::from_bytes(image.text_base, &image.text, cfg);
        let in_scope = |pc: u32| scope.iter().any(|&(lo, hi)| pc >= lo && pc < hi);
        let mut clean = true;
        while !in_scope(emu.pc()) && emu.steps() < MF_TRIAL_STEPS {
            match emu.step_predecoded(&pristine) {
                Ok(StepOutcome::Step(_)) => {}
                _ => {
                    clean = false;
                    break;
                }
            }
        }
        if !clean {
            emu = image.boot_emu();
            emu.cfg = cfg;
        }
        let budget = MF_TRIAL_STEPS - emu.steps();
        let snap = emu.snapshot();
        let uart = image.symbol("uart_out");
        MultiFaultRunner { emu, snap, image: pristine.clone(), pristine, budget, uart }
    }

    /// Steps already replayed into the snapshot (per-trial budget is
    /// [`MF_TRIAL_STEPS`] minus this).
    pub fn replayed(&self) -> u64 {
        MF_TRIAL_STEPS - self.budget
    }

    /// Runs one trial with `faults` armed and classifies it.
    ///
    /// Classification extends the Figure 2 taxonomy to the boot
    /// firmware: *Success* when the impossible path's
    /// [`COMPROMISE_VALUE`] is stored to the uart at any point (the
    /// final uart value is overwritten by the normal report, so the
    /// store itself is watched), *No Effect* for a clean stop returning
    /// [`BOOT_MARKER`], fault classes via
    /// [`Outcome::from_fault`], *Failed* otherwise (wrong marker, wrong
    /// stop, stuck).
    pub fn run(&mut self, faults: &[FaultInstance]) -> Outcome {
        self.emu.restore(&self.snap);
        for f in faults {
            self.emu.inject(f.injection());
            self.image.invalidate_range(f.site, 2);
        }
        let mut compromised = false;
        let mut stopped = None;
        let mut fault = None;
        for _ in 0..self.budget {
            match self.emu.step_predecoded(&self.image) {
                Ok(StepOutcome::Step(s)) => {
                    if s.store == Some((self.uart, COMPROMISE_VALUE)) {
                        compromised = true;
                    }
                }
                Ok(StepOutcome::Stop { reason, .. }) => {
                    stopped = Some(reason);
                    break;
                }
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
        }
        for f in faults {
            self.image.heal_range(&self.pristine, f.site, 2);
        }
        if compromised {
            return Outcome::Success;
        }
        match (stopped, fault) {
            (Some(StopReason::Bkpt(_)), _) if self.emu.cpu.reg(Reg::R0) == BOOT_MARKER => {
                Outcome::NoEffect
            }
            (Some(_), _) => Outcome::Failed,
            (None, Some(f)) => Outcome::from_fault(&f),
            (None, None) => Outcome::Failed, // step budget exhausted
        }
    }
}

/// What the unfaulted execution of an image does within the trial
/// budget — the reference a [`DivergenceRunner`] classifies against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Baseline {
    /// Clean stop with this reason and final `r0`.
    Stop(StopReason, u32),
    /// The unfaulted run never stops inside the budget (spin loop).
    Spin,
}

/// [`MultiFaultRunner`] generalized to firmware the compiler did not
/// produce: ingested third-party images have no `uart_out` symbol and no
/// [`BOOT_MARKER`] convention, so trials classify by *divergence from
/// the unfaulted baseline* instead.
///
/// Construction boots the image, advances to the first scoped fetch,
/// snapshots, and replays one unfaulted trial to record the baseline.
/// Each faulted trial then classifies as:
///
/// - *Success* when the optional `(address, value)` store watch fires —
///   the glitch drove a store no honest run performs;
/// - *No Effect* for a clean stop matching the baseline stop reason and
///   final `r0` (or, for a spinning baseline, exhausting the budget at
///   some scoped PC);
/// - fault classes via [`Outcome::from_fault`];
/// - *Failed* otherwise (diverged stop, wrong `r0`, stuck when the
///   baseline finished).
#[derive(Debug)]
pub struct DivergenceRunner {
    emu: Emu,
    snap: Snapshot,
    image: PredecodedImage,
    pristine: PredecodedImage,
    budget: u64,
    watch: Option<(u32, u32)>,
    baseline: Baseline,
}

impl DivergenceRunner {
    /// Boots `image`, snapshots at the first fetch within `scope`, and
    /// records the unfaulted baseline. `watch` is the compromise oracle:
    /// a `(address, value)` store that only glitched control flow can
    /// reach.
    pub fn new(
        image: &FirmwareImage,
        cfg: Config,
        scope: &[(u32, u32)],
        watch: Option<(u32, u32)>,
    ) -> DivergenceRunner {
        let mut emu = image.boot_emu();
        emu.cfg = cfg;
        let pristine = PredecodedImage::from_bytes(image.text_base, &image.text, cfg);
        let in_scope = |pc: u32| scope.iter().any(|&(lo, hi)| pc >= lo && pc < hi);
        let mut clean = true;
        while !in_scope(emu.pc()) && emu.steps() < MF_TRIAL_STEPS {
            match emu.step_predecoded(&pristine) {
                Ok(StepOutcome::Step(_)) => {}
                _ => {
                    clean = false;
                    break;
                }
            }
        }
        if !clean {
            emu = image.boot_emu();
            emu.cfg = cfg;
        }
        let budget = MF_TRIAL_STEPS - emu.steps();
        let snap = emu.snapshot();

        // One unfaulted replay pins the baseline the trials diverge from.
        let mut baseline = Baseline::Spin;
        for _ in 0..budget {
            match emu.step_predecoded(&pristine) {
                Ok(StepOutcome::Step(_)) => {}
                Ok(StepOutcome::Stop { reason, .. }) => {
                    baseline = Baseline::Stop(reason, emu.cpu.reg(Reg::R0));
                    break;
                }
                Err(f) => panic!("unfaulted baseline faults: {f:?}"),
            }
        }
        emu.restore(&snap);
        DivergenceRunner { emu, snap, image: pristine.clone(), pristine, budget, watch, baseline }
    }

    /// Steps already replayed into the snapshot.
    pub fn replayed(&self) -> u64 {
        MF_TRIAL_STEPS - self.budget
    }

    /// Runs one trial with `faults` armed and classifies it against the
    /// baseline.
    pub fn run(&mut self, faults: &[FaultInstance]) -> Outcome {
        self.emu.restore(&self.snap);
        for f in faults {
            self.emu.inject(f.injection());
            self.image.invalidate_range(f.site, 2);
        }
        let mut compromised = false;
        let mut stopped = None;
        let mut fault = None;
        for _ in 0..self.budget {
            match self.emu.step_predecoded(&self.image) {
                Ok(StepOutcome::Step(s)) => {
                    if self.watch.is_some() && s.store == self.watch {
                        compromised = true;
                    }
                }
                Ok(StepOutcome::Stop { reason, .. }) => {
                    stopped = Some(reason);
                    break;
                }
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
        }
        for f in faults {
            self.image.heal_range(&self.pristine, f.site, 2);
        }
        if compromised {
            return Outcome::Success;
        }
        match (stopped, fault, self.baseline) {
            (Some(reason), _, Baseline::Stop(base, r0))
                if reason == base && self.emu.cpu.reg(Reg::R0) == r0 =>
            {
                Outcome::NoEffect
            }
            (Some(_), _, _) => Outcome::Failed,
            (None, Some(f), _) => Outcome::from_fault(&f),
            (None, None, Baseline::Spin) => Outcome::NoEffect,
            (None, None, _) => Outcome::Failed, // budget exhausted, baseline finished
        }
    }
}
